//! Seeded random generation of interval-logic formulas.
//!
//! This is the formula half of the differential-fuzzing corpus (the system
//! half lives in `ilogic-fuzz`): a deterministic, depth- and
//! operator-weighted generator over the propositional fragment — the
//! fragment every backend can answer, so cross-backend verdicts are
//! comparable.
//!
//! The schedule follows the diversification/intensification split of
//! constructive-heuristics tuning: most draws are *intensified* near the
//! shape family that historically stressed this codebase — the
//! `[ => Q ] []P` prefix-invariance family whose condition fixpoint blows up
//! combinatorially (see `ROADMAP.md` and the §5.3 notes in
//! `ilogic-temporal`) — while a diversified tail keeps exercising arbitrary
//! operator mixes.
//!
//! Determinism contract: the same seed and config produce the same formula
//! sequence on every platform and at every parallelism level.  The
//! generator embeds its own SplitMix64 stream rather than depending on a
//! compat RNG crate, keeping `ilogic-core` dependency-free.

use crate::arena::{FormulaArena, FormulaId};
use crate::syntax::{Formula, IntervalTerm};

/// Tuning knobs for [`FormulaGenerator`].
#[derive(Clone, Debug)]
pub struct GeneratorConfig {
    /// Proposition alphabet formulas are built over.  Small alphabets make
    /// cross-backend disagreements dramatically more likely per instance.
    pub props: Vec<String>,
    /// Maximum operator-nesting depth of generated formulas.
    pub max_depth: u32,
    /// Percentage (0–100) of draws intensified onto the hard
    /// `[ => Q ] []P` shape family; the rest are diversified draws over the
    /// full propositional grammar.
    pub hard_family_percent: u32,
}

impl Default for GeneratorConfig {
    fn default() -> GeneratorConfig {
        GeneratorConfig {
            props: vec!["p".into(), "q".into(), "r".into()],
            max_depth: 3,
            hard_family_percent: 40,
        }
    }
}

/// A seeded, deterministic formula generator over the propositional
/// fragment (no `Forall`/`Exists`, so the `Decide` backend always applies).
#[derive(Clone, Debug)]
pub struct FormulaGenerator {
    rng: SplitMix64,
    config: GeneratorConfig,
}

impl FormulaGenerator {
    /// A generator whose entire output stream is determined by `seed`.
    pub fn from_seed(seed: u64, config: GeneratorConfig) -> FormulaGenerator {
        assert!(!config.props.is_empty(), "generator needs a non-empty alphabet");
        assert!(config.hard_family_percent <= 100, "hard_family_percent is a percentage");
        FormulaGenerator { rng: SplitMix64::new(seed), config }
    }

    /// The next formula in the stream.
    pub fn next_formula(&mut self) -> Formula {
        if self.rng.below(100) < u64::from(self.config.hard_family_percent) {
            self.hard_family()
        } else {
            self.formula(self.config.max_depth)
        }
    }

    /// The next formula, interned into `arena`.
    pub fn next_interned(&mut self, arena: &mut FormulaArena) -> FormulaId {
        arena.intern(&self.next_formula())
    }

    /// A draw from the `[ => Q ] []P` prefix-invariance family: the
    /// paper's §5.3 shape whose condition fixpoint is combinatorial, plus
    /// close mutations (`◇` for `□`, `*`-modified and `begin`/`end`-wrapped
    /// search terms, negated bodies, conjunction with a sibling instance).
    fn hard_family(&mut self) -> Formula {
        let q = Formula::prop(self.pick_prop());
        let p = Formula::prop(self.pick_prop());
        let mut term = IntervalTerm::Forward(None, Some(Box::new(IntervalTerm::event(q))));
        match self.rng.below(4) {
            0 => term = IntervalTerm::Must(Box::new(term)),
            1 => term = term.begin(),
            2 => term = term.end(),
            _ => {}
        }
        let body = match self.rng.below(4) {
            0 => Formula::eventually(p),
            1 => Formula::always(p).not(),
            2 => Formula::always(Formula::or(p, Formula::prop(self.pick_prop()))),
            _ => Formula::always(p),
        };
        let core = Formula::In(term, Box::new(body));
        match self.rng.below(4) {
            0 => Formula::and(core, self.formula(1)),
            1 => core.not(),
            _ => core,
        }
    }

    /// A diversified draw over the full propositional grammar.
    fn formula(&mut self, depth: u32) -> Formula {
        if depth == 0 {
            return self.leaf();
        }
        // Weighted operator table: connectives and temporal operators
        // dominate, `In` (the expensive, paper-specific construct) stays
        // common enough to matter, constants stay rare.
        match self.rng.below(16) {
            0 | 1 => self.leaf(),
            2 | 3 => self.formula(depth - 1).not(),
            4..=6 => Formula::and(self.formula(depth - 1), self.formula(depth - 1)),
            7..=9 => Formula::or(self.formula(depth - 1), self.formula(depth - 1)),
            10 | 11 => Formula::always(self.formula(depth - 1)),
            12 | 13 => Formula::eventually(self.formula(depth - 1)),
            _ => Formula::In(self.term(depth - 1), Box::new(self.formula(depth - 1))),
        }
    }

    /// A random interval term of bounded depth.
    fn term(&mut self, depth: u32) -> IntervalTerm {
        let event = IntervalTerm::event(self.leaf());
        if depth == 0 {
            return event;
        }
        match self.rng.below(8) {
            0 | 1 => event,
            2 => self.term(depth - 1).begin(),
            3 => self.term(depth - 1).end(),
            4 => IntervalTerm::Must(Box::new(self.term(depth - 1))),
            5 => IntervalTerm::Forward(
                self.opt_term(depth - 1).map(Box::new),
                self.opt_term(depth - 1).map(Box::new),
            ),
            6 => IntervalTerm::Backward(
                self.opt_term(depth - 1).map(Box::new),
                self.opt_term(depth - 1).map(Box::new),
            ),
            _ => self.term(depth - 1).then(self.term(depth - 1)),
        }
    }

    fn opt_term(&mut self, depth: u32) -> Option<IntervalTerm> {
        if self.rng.below(3) == 0 {
            None
        } else {
            Some(self.term(depth))
        }
    }

    fn leaf(&mut self) -> Formula {
        // Mostly propositions; constants appear rarely so folding paths
        // stay covered without collapsing whole instances.
        match self.rng.below(12) {
            0 => Formula::True,
            1 => Formula::False,
            _ => Formula::prop(self.pick_prop()),
        }
    }

    fn pick_prop(&mut self) -> String {
        let ix = self.rng.below(self.config.props.len() as u64) as usize;
        self.config.props[ix].clone()
    }
}

/// SplitMix64: tiny, fast, and statistically fine for fuzz scheduling.
#[derive(Clone, Debug)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)` (multiply-shift; bias is < 2⁻⁵⁰ for the
    /// tiny bounds used here).
    fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;

    fn quantifier_free(f: &Formula) -> bool {
        match f {
            Formula::Forall(..) | Formula::Exists(..) => false,
            Formula::True | Formula::False | Formula::Pred(_) => true,
            Formula::Not(a) | Formula::Always(a) | Formula::Eventually(a) => quantifier_free(a),
            Formula::And(a, b) | Formula::Or(a, b) => quantifier_free(a) && quantifier_free(b),
            Formula::In(_, a) => quantifier_free(a),
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let config = GeneratorConfig::default();
        let mut a = FormulaGenerator::from_seed(17, config.clone());
        let mut b = FormulaGenerator::from_seed(17, config);
        for _ in 0..200 {
            assert_eq!(a.next_formula(), b.next_formula());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FormulaGenerator::from_seed(1, GeneratorConfig::default());
        let mut b = FormulaGenerator::from_seed(2, GeneratorConfig::default());
        let diverged = (0..64).any(|_| a.next_formula() != b.next_formula());
        assert!(diverged, "distinct seeds produced identical formula streams");
    }

    #[test]
    fn output_is_propositional_over_the_alphabet() {
        let config = GeneratorConfig::default();
        let props = config.props.clone();
        let mut generator = FormulaGenerator::from_seed(99, config);
        for _ in 0..500 {
            let formula = generator.next_formula();
            assert!(quantifier_free(&formula), "generated a quantifier: {formula:?}");
            for name in analysis::proposition_names(&formula) {
                assert!(props.contains(&name), "unknown proposition {name}");
            }
        }
    }

    #[test]
    fn hard_family_shapes_actually_occur() {
        // With a 40% intensification bias a 200-draw stream must contain
        // the `[ => Q ] ...` skeleton many times over.
        fn has_forward_to_event(f: &Formula) -> bool {
            match f {
                Formula::In(IntervalTerm::Forward(None, Some(_)), _) => true,
                Formula::In(
                    IntervalTerm::Must(t) | IntervalTerm::Begin(t) | IntervalTerm::End(t),
                    _,
                ) if matches!(**t, IntervalTerm::Forward(None, Some(_))) => true,
                Formula::Not(a) => has_forward_to_event(a),
                Formula::And(a, b) => has_forward_to_event(a) || has_forward_to_event(b),
                _ => false,
            }
        }
        let mut generator = FormulaGenerator::from_seed(3, GeneratorConfig::default());
        let hits = (0..200).filter(|_| has_forward_to_event(&generator.next_formula())).count();
        assert!(hits >= 40, "only {hits}/200 draws hit the hard family");
    }

    #[test]
    fn interning_the_stream_is_stable() {
        let mut arena_a = FormulaArena::new();
        let mut arena_b = FormulaArena::new();
        let mut a = FormulaGenerator::from_seed(5, GeneratorConfig::default());
        let mut b = FormulaGenerator::from_seed(5, GeneratorConfig::default());
        let ids_a: Vec<FormulaId> = (0..100).map(|_| a.next_interned(&mut arena_a)).collect();
        let ids_b: Vec<FormulaId> = (0..100).map(|_| b.next_interned(&mut arena_b)).collect();
        assert_eq!(ids_a, ids_b, "hash-consed ids must match under identical streams");
        // Hash-consing must actually dedupe: 100 draws over a 3-letter
        // alphabet repeat subterms constantly.
        assert!(arena_a.formula_count() < 100 * 8, "no sharing in the arena?");
    }

    #[test]
    fn depth_zero_yields_leaves() {
        let config =
            GeneratorConfig { max_depth: 0, hard_family_percent: 0, ..GeneratorConfig::default() };
        let mut generator = FormulaGenerator::from_seed(8, config);
        for _ in 0..50 {
            assert!(matches!(
                generator.next_formula(),
                Formula::True | Formula::False | Formula::Pred(_)
            ));
        }
    }
}
