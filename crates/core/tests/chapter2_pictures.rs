//! Experiment `F-2.1..2.8`: the interval diagrams of Chapter 2, formulas
//! (1)–(8), reproduced as executable semantics checks.
//!
//! Each test builds the trace drawn in the corresponding picture and checks
//! both that the formula evaluates as the text says and that the constructed
//! interval has the pictured endpoints.

use ilogic_core::dsl::*;
use ilogic_core::prelude::*;
use ilogic_core::semantics::{Dir, Env};

fn trace_of(rows: &[&[&str]]) -> Trace {
    Trace::finite(
        rows.iter()
            .map(|props| {
                let mut s = State::new();
                for p in *props {
                    s.insert(Prop::plain(*p));
                }
                s
            })
            .collect(),
    )
}

fn construct(trace: &Trace, term: &IntervalTerm) -> Constructed {
    Evaluator::new(trace).construct(term, Interval::unbounded(0), Dir::Forward, &Env::new())
}

/// Formula (1): [ x = y  ⇒  y = 16 ] □ x > z.
#[test]
fn formula_1_state_change_events() {
    let mk = |rows: &[(i64, i64, i64)]| {
        Trace::finite(
            rows.iter()
                .map(|(x, y, z)| State::new().with_var("x", *x).with_var("y", *y).with_var("z", *z))
                .collect(),
        )
    };
    let x_eq_y = cmp(Expr::state("x"), CmpOp::Eq, Expr::state("y"));
    let y_is_16 = cmp(Expr::state("y"), CmpOp::Eq, Expr::lit(16i64));
    let x_gt_z = cmp(Expr::state("x"), CmpOp::Gt, Expr::state("z"));
    let term = fwd(event(x_eq_y), event(y_is_16));
    let formula = always(x_gt_z).within(term.clone());

    // x becomes equal to y at position 1, y becomes 16 at position 3.
    let trace = mk(&[(5, 3, 0), (4, 4, 0), (7, 7, 1), (9, 16, 2), (0, 0, 5)]);
    assert!(Evaluator::new(&trace).check(&formula));
    let interval = construct(&trace, &term).interval().expect("interval found");
    assert_eq!((interval.lo, interval.last()), (1, Some(3)));
}

/// Formula (2): allowing x > z to become false as y becomes 16, by ending the
/// interval at begin(y = 16).
#[test]
fn formula_2_begin_weakens_the_right_endpoint() {
    let mk = |rows: &[(i64, i64, i64)]| {
        Trace::finite(
            rows.iter()
                .map(|(x, y, z)| State::new().with_var("x", *x).with_var("y", *y).with_var("z", *z))
                .collect(),
        )
    };
    let x_eq_y = cmp(Expr::state("x"), CmpOp::Eq, Expr::state("y"));
    let y_is_16 = cmp(Expr::state("y"), CmpOp::Eq, Expr::lit(16i64));
    let x_gt_z = cmp(Expr::state("x"), CmpOp::Gt, Expr::state("z"));
    let strict = always(x_gt_z.clone()).within(fwd(event(x_eq_y.clone()), event(y_is_16.clone())));
    let weak = always(x_gt_z).within(fwd(event(x_eq_y), begin(event(y_is_16))));
    // x > z fails exactly in the state where y becomes 16.
    let trace = mk(&[(5, 3, 0), (4, 4, 0), (7, 7, 1), (1, 16, 2)]);
    assert!(!Evaluator::new(&trace).check(&strict));
    assert!(Evaluator::new(&trace).check(&weak));
}

/// Formula (3): [ (A ⇒ B) ⇒ C ] ◇D.
#[test]
fn formula_3_nested_forward_context() {
    let term = fwd(fwd(event(prop("A")), event(prop("B"))), event(prop("C")));
    let formula = eventually(prop("D")).within(term.clone());
    let good = trace_of(&[&[], &["A"], &["B"], &["D"], &["C"]]);
    assert!(Evaluator::new(&good).check(&formula));
    let interval = construct(&good, &term).interval().unwrap();
    assert_eq!((interval.lo, interval.last()), (2, Some(4)));
    // Vacuously true when C never occurs.
    let vacuous = trace_of(&[&[], &["A"], &["B"], &[]]);
    assert!(Evaluator::new(&vacuous).check(&formula));
    // False when D is missing inside a found context.
    let missing = trace_of(&[&["D"], &["A"], &["B"], &[], &["C"]]);
    assert!(!Evaluator::new(&missing).check(&formula));
}

/// Formula (4): [ (A ⇒ *B) ⇒ C ] ◇D strengthens (3) with the requirement that
/// a B event follow the A event.
#[test]
fn formula_4_star_requires_b_after_a() {
    let formula = eventually(prop("D"))
        .within(fwd(fwd(event(prop("A")), must(event(prop("B")))), event(prop("C"))));
    // A occurs, B never does: the formula is false rather than vacuous.
    let no_b = trace_of(&[&[], &["A"], &[], &["C"], &["D"]]);
    assert!(!Evaluator::new(&no_b).check(&formula));
    // No A at all: vacuously true.
    let no_a = trace_of(&[&[], &[], &["C"]]);
    assert!(Evaluator::new(&no_a).check(&formula));
    // Equivalent to (3) conjoined with [A ⇒]*B, per §2.1.
    let three = eventually(prop("D"))
        .within(fwd(fwd(event(prop("A")), event(prop("B"))), event(prop("C"))));
    let obligation = occurs(event(prop("B"))).within(fwd_from(event(prop("A"))));
    let equivalent = three.and(obligation);
    for trace in [
        &no_b,
        &no_a,
        &trace_of(&[&[], &["A"], &["B"], &["D"], &["C"]]),
        &trace_of(&[&["D"], &["A"], &["B"], &[], &["C"]]),
    ] {
        let ev = Evaluator::new(trace);
        assert_eq!(ev.check(&formula), ev.check(&equivalent));
    }
}

/// Formula (5): [ A ⇒ (B ⇒ C) ] ◇D — the interval ends with the first C that
/// follows the next B.
#[test]
fn formula_5_right_nested_context() {
    let term = fwd(event(prop("A")), fwd(event(prop("B")), event(prop("C"))));
    let formula = eventually(prop("D")).within(term.clone());
    // C before B does not terminate the interval; only the C after B does.
    let trace = trace_of(&[&[], &["A"], &["C"], &["B"], &["D"], &["C"]]);
    assert!(Evaluator::new(&trace).check(&formula));
    let interval = construct(&trace, &term).interval().unwrap();
    assert_eq!((interval.lo, interval.last()), (1, Some(5)));
}

/// Formula (6): [ begin(A ⇒ B) ⇒ C ] ◇D — like (5) but B and C may come in
/// either order because the interval starts at the beginning of A ⇒ B.
#[test]
fn formula_6_begin_allows_either_order() {
    let term = fwd(begin(fwd(event(prop("A")), event(prop("B")))), event(prop("C")));
    let formula = eventually(prop("D")).within(term);
    // C before B: still checked from the end of the A event.
    let trace = trace_of(&[&[], &["A"], &["D"], &["C"], &["B"]]);
    assert!(Evaluator::new(&trace).check(&formula));
    // The (5)-shaped formula is vacuous here (no C after B), so (6) is strictly
    // more constraining on this trace shape.
    let five = eventually(prop("D"))
        .within(fwd(event(prop("A")), fwd(event(prop("B")), event(prop("C")))));
    assert!(Evaluator::new(&trace).check(&five));
}

/// Formula (7): [ (A ⇒ B) ⇐ C ] ◇D — the first C bounds the context, within
/// which the most recent A (and then its B) is found.
#[test]
#[ignore = "ISSUE 1 triage, re-confirmed in ISSUE 3: the picture expects F((A=>B) <= C) to be \
the located A=>B interval <4,6>, but the report's own decomposition F(I <=, F(<= J, c, d), F) \
(implemented in semantics.rs and relied on by the Chapter 8 mutex specs) yields <6,7>; this is \
a contested-semantics question, orthogonal to the PR 3 parallel engines (which change no \
interval semantics), and reconciling the backward operator's two readings remains future \
semantic work"]
fn formula_7_backward_context() {
    let term = bwd(fwd(event(prop("A")), event(prop("B"))), event(prop("C")));
    let formula = eventually(prop("D")).within(term.clone());
    // Two A events (positions 1 and 4); the most recent one before C is used.
    let trace = trace_of(&[&[], &["A"], &[], &[], &["A"], &["D"], &["B"], &["C"]]);
    assert!(Evaluator::new(&trace).check(&formula));
    let interval = construct(&trace, &term).interval().unwrap();
    // Most recent A ends at 4, B at 6.
    assert_eq!((interval.lo, interval.last()), (4, Some(6)));
    // Vacuously true if no B occurs between the most recent A and C (§2.1).
    let vacuous = trace_of(&[&[], &["B"], &["A"], &[], &["C"]]);
    assert!(Evaluator::new(&vacuous).check(&formula));
}

/// Formula (8): [ begin(A ⇐ B) ⇐ C ] ◇D — the interval extends back from the
/// first C to the beginning of the most recent A ⇐ B interval.
#[test]
fn formula_8_backward_begin() {
    let term = bwd(begin(bwd(event(prop("A")), event(prop("B")))), event(prop("C")));
    let formula = eventually(prop("D")).within(term.clone());
    let trace = trace_of(&[&[], &["A"], &["D"], &["B"], &[], &["C"]]);
    assert!(Evaluator::new(&trace).check(&formula));
    let interval = construct(&trace, &term).interval().unwrap();
    assert_eq!(interval.last(), Some(5));
    assert!(interval.lo <= 2, "the interval must reach back to cover D");
}
