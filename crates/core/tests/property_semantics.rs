//! Property-based tests of the core semantic invariants, using `proptest` to
//! generate random traces and random formulas of a bounded depth.

use proptest::prelude::*;

use ilogic_core::dsl::*;
use ilogic_core::prelude::*;
use ilogic_core::star::eliminate_star;

const PROPS: [&str; 3] = ["A", "B", "C"];

fn arb_trace(max_len: usize) -> impl Strategy<Value = Trace> {
    proptest::collection::vec(proptest::collection::vec(any::<bool>(), PROPS.len()), 1..=max_len)
        .prop_map(|rows| {
            Trace::finite(
                rows.into_iter()
                    .map(|row| {
                        let mut s = State::new();
                        for (i, held) in row.into_iter().enumerate() {
                            if held {
                                s.insert(Prop::plain(PROPS[i]));
                            }
                        }
                        s
                    })
                    .collect(),
            )
        })
}

fn arb_term(depth: u32) -> BoxedStrategy<IntervalTerm> {
    let leaf = prop_oneof![
        Just(event(prop("A"))),
        Just(event(prop("B"))),
        Just(event(prop("C"))),
        Just(event(prop("A").and(prop("B")))),
    ];
    leaf.prop_recursive(depth, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| fwd(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| bwd(a, b)),
            inner.clone().prop_map(fwd_from),
            inner.clone().prop_map(fwd_to),
            inner.clone().prop_map(begin),
            inner.clone().prop_map(end),
            inner.clone().prop_map(must),
        ]
    })
    .boxed()
}

fn arb_formula(depth: u32) -> BoxedStrategy<Formula> {
    let leaf = prop_oneof![
        Just(prop("A")),
        Just(prop("B")),
        Just(prop("C")),
        Just(Formula::True),
        Just(Formula::False),
    ];
    leaf.prop_recursive(depth, 24, 2, move |inner| {
        prop_oneof![
            inner.clone().prop_map(Formula::not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.clone().prop_map(Formula::always),
            inner.clone().prop_map(Formula::eventually),
            (arb_term(2), inner.clone()).prop_map(|(t, f)| f.within(t)),
        ]
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Negation is classical: exactly one of φ and ¬φ holds of any computation.
    #[test]
    fn excluded_middle(formula in arb_formula(3), trace in arb_trace(5)) {
        let ev = Evaluator::new(&trace);
        prop_assert_ne!(ev.check(&formula), ev.check(&formula.clone().not()));
    }

    /// The Appendix A star reduction agrees with the direct semantics.
    #[test]
    fn star_reduction_agrees_with_direct_semantics(formula in arb_formula(3), trace in arb_trace(5)) {
        let ev = Evaluator::new(&trace);
        let reduced = eliminate_star(&formula);
        prop_assert_eq!(ev.check(&formula), ev.check(&reduced));
    }

    /// V1: interval formulas distribute over conjunction (arbitrary instances).
    #[test]
    fn conjunction_distributes_over_intervals(
        term in arb_term(2),
        a in arb_formula(2),
        b in arb_formula(2),
        trace in arb_trace(5),
    ) {
        let ev = Evaluator::new(&trace);
        let lhs = a.clone().within(term.clone()).and(b.clone().within(term.clone()));
        let rhs = a.and(b).within(term);
        prop_assert_eq!(ev.check(&lhs), ev.check(&rhs));
    }

    /// V7: the bare forward operator selects the whole context.
    #[test]
    fn whole_context_is_identity(formula in arb_formula(3), trace in arb_trace(5)) {
        let ev = Evaluator::new(&trace);
        prop_assert_eq!(ev.check(&formula), ev.check(&formula.clone().within(whole())));
    }

    /// Vacuity: if an interval cannot be constructed, every formula holds of it.
    #[test]
    fn vacuity_of_unconstructible_intervals(term in arb_term(2), body in arb_formula(2), trace in arb_trace(4)) {
        let ev = Evaluator::new(&trace);
        let stripped = term.strip_must();
        if !ev.check(&occurs(stripped.clone())) {
            prop_assert!(ev.check(&body.within(stripped)));
        }
    }

    /// Stutter invariance of the satisfaction relation: duplicating the final
    /// state does not change any formula's value.
    #[test]
    fn final_state_stuttering_is_invisible(formula in arb_formula(3), trace in arb_trace(4)) {
        let mut states = trace.states().to_vec();
        states.push(states.last().expect("non-empty").clone());
        let stuttered = Trace::finite(states);
        prop_assert_eq!(
            Evaluator::new(&trace).check(&formula),
            Evaluator::new(&stuttered).check(&formula)
        );
    }
}
