//! Adversarial input for the hand-rolled JSON layer.
//!
//! [`Json::parse`] sits on a process boundary (workers answering over
//! sockets, CI diffing archived reports), so it must treat its input as
//! hostile: truncated documents, pathological nesting, and huge numeric
//! literals are all *errors*, never panics, never unbounded recursion.  The
//! cases here complement the round-trip tests in `json.rs` itself: those pin
//! what valid documents mean, these pin that invalid ones fail safely.

use ilogic_core::json::{Json, JsonError, JsonErrorKind, MAX_DEPTH};
use ilogic_core::prelude::*;
use proptest::TestRng;

/// A real production document: a `CheckReport` as the service serializes it.
/// Exercising the adversarial cases against actual payloads (not just
/// hand-written snippets) keeps the corpus honest about what crosses the
/// boundary.
fn report_document() -> String {
    let session = Session::new();
    let report = session.check(
        CheckRequest::new(ilogic_core::dsl::prop("P").or(ilogic_core::dsl::prop("P").not()))
            .bounded(["P"], 2),
    );
    report.to_json()
}

/// Every seed document the adversarial sweeps start from.
fn seed_documents() -> Vec<String> {
    vec![
        report_document(),
        r#"{"b":[1,2,{"x":null}],"a":"text with \"escapes\"\n","n":-2.25e-3}"#.to_string(),
        r#"[true,false,null,0,-17,3.5,"λ→∞",[],{}]"#.to_string(),
    ]
}

#[test]
fn every_truncation_of_a_valid_document_errors_cleanly() {
    for document in seed_documents() {
        assert!(Json::parse(&document).is_ok(), "seed must parse: {document}");
        for end in 0..document.len() {
            if !document.is_char_boundary(end) {
                continue;
            }
            let truncated = &document[..end];
            // A strict prefix of these documents is never itself valid JSON
            // (none of them are scalar-prefixed); all that matters is that
            // the parser returns an error instead of panicking or hanging.
            assert!(
                Json::parse(truncated).is_err(),
                "truncation at byte {end} of {document:?} parsed"
            );
        }
    }
}

#[test]
fn nesting_is_accepted_up_to_the_limit_and_rejected_beyond() {
    let arrays = |depth: usize| format!("{}0{}", "[".repeat(depth), "]".repeat(depth));
    assert!(Json::parse(&arrays(MAX_DEPTH)).is_ok());
    assert!(Json::parse(&arrays(MAX_DEPTH + 1)).is_err());

    // Objects and mixed containers count against the same limit.
    let objects = |depth: usize| format!("{}null{}", "{\"k\":".repeat(depth), "}".repeat(depth));
    assert!(Json::parse(&objects(MAX_DEPTH)).is_ok());
    assert!(Json::parse(&objects(MAX_DEPTH + 1)).is_err());
    let mixed = format!("{}0{}", "[{\"k\":".repeat(MAX_DEPTH), "}]".repeat(MAX_DEPTH));
    assert!(Json::parse(&mixed).is_err(), "2×MAX_DEPTH mixed nesting must be rejected");
}

#[test]
fn unclosed_deep_nesting_does_not_overflow_the_stack() {
    // The classic parser bomb: a million openers and no closers.  The depth
    // guard must cut the recursion long before the stack does.
    for opener in ["[", "{\"k\":", "[[{\"deep\":"] {
        let bomb = opener.repeat(1_000_000 / opener.len());
        let error = Json::parse(&bomb).expect_err("a bomb must not parse");
        assert!(
            error.to_string().contains("nesting deeper"),
            "expected the depth guard, got: {error}"
        );
    }
}

#[test]
fn huge_numeric_literals_error_or_saturate_never_panic() {
    // Integers beyond i64 are rejected (the report payloads all fit i64;
    // silently rounding through f64 would corrupt counters).
    assert_eq!(Json::parse("9223372036854775807"), Ok(Json::Int(i64::MAX)));
    assert_eq!(Json::parse("-9223372036854775808"), Ok(Json::Int(i64::MIN)));
    assert!(Json::parse("9223372036854775808").is_err(), "i64::MAX + 1 must be rejected");
    assert!(Json::parse("-9223372036854775809").is_err());
    let thousand_digits = "9".repeat(1000);
    assert!(Json::parse(&thousand_digits).is_err());

    // Floats saturate per IEEE 754 (standard strtod behavior) — and the
    // printer renders non-finite values as `null`, JSON's only honest
    // stand-in, so a saturated parse cannot smuggle `inf` back out.
    let overflow = Json::parse("1e309").expect("float overflow still parses");
    assert!(overflow.as_f64().is_some_and(f64::is_infinite));
    assert_eq!(overflow.to_string(), "null");
    let underflow = Json::parse("1e-400").expect("float underflow still parses");
    assert_eq!(underflow.as_f64(), Some(0.0));
    // A huge-but-finite mantissa parses to the nearest representable double.
    let long_fraction = format!("0.{}1", "0".repeat(400));
    assert!(Json::parse(&long_fraction).is_ok());

    // Exponents big enough to overflow an exponent accumulator in a naive
    // implementation.
    for source in ["1e99999999999999999999", "1e-99999999999999999999"] {
        // Rejection is equally fine; panicking is not.
        if let Ok(value) = Json::parse(source) {
            assert!(value.as_f64().is_some(), "{source} parsed to a non-number");
        }
    }
}

#[test]
fn malformed_numbers_are_rejected_not_reinterpreted() {
    for source in ["007", "1.", "-.5", ".5", "1e", "1e+", "--1", "+1", "0x10", "1_000", "NaN"] {
        assert!(Json::parse(source).is_err(), "{source:?} must not parse");
    }
}

/// What the printer's non-finite-floats-as-`null` convention makes of a
/// value: the shape a print/parse round trip must reproduce exactly.
fn null_out_non_finite(value: Json) -> Json {
    match value {
        Json::Float(x) if !x.is_finite() => Json::Null,
        Json::Array(items) => Json::Array(items.into_iter().map(null_out_non_finite).collect()),
        Json::Object(fields) => {
            Json::Object(fields.into_iter().map(|(k, v)| (k, null_out_non_finite(v))).collect())
        }
        other => other,
    }
}

/// Deterministic byte-level mutation fuzz over the seed documents: flips,
/// deletions, insertions and splices of the document text.  Whatever comes
/// out, `parse` must return — `Ok` for mutations that happen to stay valid,
/// `Err` otherwise — and everything it accepts must survive a print/parse
/// round trip.  2000 mutants per seed document keeps the test near-instant
/// while covering every byte position many times over.
#[test]
fn mutation_fuzz_never_panics_and_accepted_mutants_round_trip() {
    let interesting: &[u8] = b"\"\\{}[]:,.-+eE0 \x00\x7fnt";
    for (doc_index, document) in seed_documents().into_iter().enumerate() {
        let mut rng = TestRng::from_seed_u64(0xADE5_0000 + doc_index as u64);
        for _ in 0..2000 {
            let mut bytes = document.clone().into_bytes();
            for _ in 0..=rng.below(3) {
                let position = rng.below(bytes.len());
                match rng.below(4) {
                    0 => bytes[position] ^= 1 << rng.below(8),
                    1 => {
                        bytes[position] = interesting[rng.below(interesting.len())];
                    }
                    2 => {
                        bytes.remove(position);
                    }
                    _ => {
                        let byte = interesting[rng.below(interesting.len())];
                        bytes.insert(position, byte);
                    }
                }
                if bytes.is_empty() {
                    break;
                }
            }
            // Invalid UTF-8 never reaches `parse` (its input is `&str`); the
            // mutation space is the valid-UTF-8 slice of byte strings.
            let Ok(mutant) = String::from_utf8(bytes) else { continue };
            if let Ok(value) = Json::parse(&mutant) {
                let printed = value.to_string();
                let reparsed = Json::parse(&printed).unwrap_or_else(|error| {
                    panic!("accepted mutant {mutant:?} printed as unparseable {printed:?}: {error}")
                });
                // The one documented round-trip exception: non-finite floats
                // (a mutant like `1e999` saturates to infinity) print as
                // `null`, so compare against that normalization.
                assert_eq!(
                    reparsed,
                    null_out_non_finite(value),
                    "round trip drifted for mutant {mutant:?}"
                );
            }
        }
    }
}

#[test]
fn syntax_errors_carry_the_failing_byte_offset() {
    // A service answering a malformed body over the wire points at the
    // exact byte; these pin the reported offsets so 400 messages stay
    // actionable rather than approximate.
    let cases: &[(&str, usize)] = &[
        ("{\"a\":}", 5),          // value expected where `}` sits
        ("[1,2 3]", 5),           // missing comma: the stray `3`
        ("{\"a\":1 \"b\":2}", 7), // missing comma between members
        ("{\"a\" 1}", 5),         // missing colon
        ("\"ab\\x\"", 4),         // bad escape letter
        ("[1,2]x", 5),            // trailing input after the document
        ("007", 0),               // leading zero, anchored at number start
        ("1.e3", 0),              // bare fraction, anchored at number start
        ("nul", 0),               // keyword typo
    ];
    for &(source, expected) in cases {
        let error = Json::parse(source).expect_err(source);
        assert_eq!(error.kind(), JsonErrorKind::Syntax, "{source:?}: {error}");
        assert_eq!(error.offset(), Some(expected), "{source:?}: {error}");
        assert!(
            error.to_string().contains(&format!("at byte {expected}")),
            "{source:?} display lacks the offset: {error}"
        );
    }

    // Truncations report an offset somewhere inside the input (never past
    // its end), across every seed document.
    for document in seed_documents() {
        for end in (0..document.len()).filter(|&end| document.is_char_boundary(end)) {
            let truncated = &document[..end];
            let error = Json::parse(truncated).expect_err("truncations never parse");
            assert_eq!(error.kind(), JsonErrorKind::Syntax);
            let offset = error.offset().expect("syntax errors carry offsets");
            assert!(offset <= end, "offset {offset} past the {end}-byte input");
        }
    }

    // Shape errors come from accessors on already-parsed documents, where
    // no byte position exists any more.
    let shape = Json::parse("{}").unwrap().require("verdict").expect_err("missing field");
    assert_eq!(shape.kind(), JsonErrorKind::Shape);
    assert_eq!(shape.offset(), None);
    assert!(shape.to_string().contains("missing field `verdict`"));
}

#[test]
fn report_parsing_rejects_mutilated_documents_without_panicking() {
    // One level up from raw JSON: `CheckReport::from_json` faces the same
    // boundary.  Shape errors (valid JSON, wrong fields) must come back as
    // `JsonError`s too.
    let document = report_document();
    assert!(CheckReport::from_json(&document).is_ok());
    let cases: Vec<String> = vec![
        document.replace("verdict", "verdikt"),
        document.replace("valid_up_to", "maybe"),
        document.replace("\"bound\":2", "\"bound\":\"two\""),
        "{}".to_string(),
        "[]".to_string(),
        "null".to_string(),
        document[..document.len() / 2].to_string(),
    ];
    for case in cases {
        let result: Result<CheckReport, JsonError> = CheckReport::from_json(&case);
        assert!(result.is_err(), "mutilated report parsed: {case:?}");
    }
}
