//! Cross-thread `Session` coverage: the single-owner concurrency model.
//!
//! A [`Session`] is a plain owned value — no interior `Rc`/`RefCell`, no
//! thread-affine state — so the supported concurrency model is
//! **single-owner**: each thread owns its own session (or a session is
//! *moved* between threads), and determinism is per-session.  That is
//! exactly the model `ilogic-server` runs in production: every `/check`
//! and every batch job set gets a fresh session on whichever worker thread
//! picks it up.  These tests pin the two halves of the contract:
//!
//! 1. `Session` (and requests/reports) are `Send` — the compile-time audit.
//! 2. Concurrent sessions on many threads produce reports bit-identical to
//!    each other and to a fresh main-thread session — the stress test.
//!
//! `&Session` sharing across threads is *not* part of the contract:
//! checking mutates memo tables, so the API takes `&mut self` and the
//! borrow checker already rules shared mutation out.  Moving is the model.

use std::thread;
use std::time::Duration;

use ilogic_core::dsl::prop;
use ilogic_core::generate::{FormulaGenerator, GeneratorConfig};
use ilogic_core::prelude::*;

/// The compile-time audit: session values may move across threads.  (This
/// is a *static* assertion — if a thread-affine field ever sneaks into
/// these types, this test stops compiling, not just passing.)
#[test]
fn sessions_requests_and_reports_are_send() {
    fn assert_send<T: Send>() {}
    assert_send::<Session>();
    assert_send::<CheckRequest>();
    assert_send::<CheckReport>();
    assert_send::<ResourceBudget>();
}

fn workload() -> Vec<CheckRequest> {
    let mut generator = FormulaGenerator::from_seed(
        0x5EED_1E57,
        GeneratorConfig { max_depth: 3, ..GeneratorConfig::default() },
    );
    (0..24)
        .map(|_| {
            CheckRequest::new(generator.next_formula())
                .auto()
                .with_budget(ResourceBudget::default().with_timeout(Duration::from_secs(30)))
        })
        .collect()
}

fn zero_durations(reports: &mut [CheckReport]) {
    for report in reports {
        report.stats.duration = Duration::ZERO;
    }
}

/// Eight threads, each with its own fresh session over the same request
/// stream: all of them must agree bit-for-bit with a main-thread session.
/// This is the determinism guarantee the server's fresh-session-per-job-set
/// design leans on — thread identity must never leak into a report.
#[test]
fn concurrent_sessions_are_bit_identical_across_threads() {
    let mut baseline = Session::new().check_many(workload());
    zero_durations(&mut baseline);

    let workers: Vec<_> = (0..8)
        .map(|_| {
            thread::spawn(|| {
                let mut reports = Session::new().check_many(workload());
                zero_durations(&mut reports);
                reports
            })
        })
        .collect();
    for (index, worker) in workers.into_iter().enumerate() {
        let reports = worker.join().expect("worker thread completes");
        assert_eq!(reports, baseline, "thread {index} diverged from the main-thread baseline");
    }
}

/// A session may migrate between threads mid-life (ownership transfer, the
/// other leg of the single-owner model): results accumulated before the
/// move remain fetchable after it, and checking continues deterministically.
#[test]
fn a_session_moved_across_threads_keeps_its_state() {
    let mut session = Session::new();
    let first = session.check(CheckRequest::new(prop("P").or(prop("P").not())).decide());
    assert!(first.verdict.passed());
    let handle = session.submit(CheckRequest::new(prop("Q").implies(prop("Q"))).decide());

    // Move the session (and the pending handle) into another thread.
    let joined = thread::spawn(move || {
        let report = session.wait(&handle);
        (session, report)
    })
    .join()
    .expect("the migrated session thread completes");
    let (mut session, report) = joined;
    assert!(report.verdict.passed(), "pending work resolves after the move");

    // And back on this thread, the same session keeps checking.
    let last = session.check(CheckRequest::new(prop("R").and(prop("R").not()).not()).decide());
    assert!(last.verdict.passed());
}
