//! Cross-thread `Session` coverage: the shared-session concurrency model.
//!
//! Since the multiversion arena landed, a [`Session`] is **shared**:
//! `check`/`submit`/`check_many` take `&self` (the interning and scheduler
//! state live behind interior locks), so many threads may dispatch into one
//! session concurrently — the model `ilogic-server` runs its warm `/check`
//! session in.  Interning never blocks running checks: a job snapshots the
//! arena version current at its prepare, and later interns append ids that
//! the older snapshot simply does not see.  These tests pin the contract:
//!
//! 1. `Session` (and its split [`InternHandle`]/[`CheckHandle`] surfaces)
//!    are `Send + Sync` — the compile-time audit.
//! 2. Concurrent sessions on many threads produce reports bit-identical to
//!    each other and to a fresh main-thread session — the stress test.
//! 3. `submit()` accepts and interns new work while a prior job is
//!    mid-flight, and both reports are bit-identical to sequential
//!    execution — the multiversion-arena acceptance test.
//! 4. Interleaving interning with in-flight checks at `Fixed(0/2/4)` never
//!    changes an answer: each job resolves exactly its version's ids, and
//!    duplicate requests replay their first occurrence's report from the
//!    verdict cache bit-for-bit.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use ilogic_core::arena::MemoStats;
use ilogic_core::dsl::prop;
use ilogic_core::generate::{FormulaGenerator, GeneratorConfig};
use ilogic_core::prelude::*;
use ilogic_core::session::ConditionStats;

/// The compile-time audit: sessions may move across threads *and* be shared
/// by reference across threads.  (This is a *static* assertion — if a
/// thread-affine or non-`Sync` field ever sneaks into these types, this
/// test stops compiling, not just passing.)
#[test]
fn sessions_requests_and_reports_are_send_and_sync() {
    fn assert_send<T: Send>() {}
    fn assert_sync<T: Sync>() {}
    assert_send::<Session>();
    assert_sync::<Session>();
    assert_send::<InternHandle<'_>>();
    assert_send::<CheckHandle<'_>>();
    assert_send::<CheckRequest>();
    assert_send::<CheckReport>();
    assert_send::<ResourceBudget>();
}

fn workload() -> Vec<CheckRequest> {
    let mut generator = FormulaGenerator::from_seed(
        0x5EED_1E57,
        GeneratorConfig { max_depth: 3, ..GeneratorConfig::default() },
    );
    (0..24)
        .map(|_| {
            CheckRequest::new(generator.next_formula())
                .auto()
                .with_budget(ResourceBudget::default().with_timeout(Duration::from_secs(30)))
        })
        .collect()
}

fn zero_durations(reports: &mut [CheckReport]) {
    for report in reports {
        report.stats.duration = Duration::ZERO;
    }
}

/// Masks the fields that legitimately depend on what else the session did
/// around a job — wall clock, and the session-cumulative gauges whose merge
/// order follows completion order: everything *else* must be bit-identical
/// to sequential execution.
fn normalize(report: &mut CheckReport) {
    report.stats.duration = Duration::ZERO;
    report.stats.session_memo = MemoStats::default();
    report.stats.session_condition = ConditionStats::default();
    report.stats.session_cache = CacheStats::default();
}

/// Eight threads, each with its own fresh session over the same request
/// stream: all of them must agree bit-for-bit with a main-thread session.
/// This is the determinism guarantee the server's fresh-session-per-job-set
/// design leans on — thread identity must never leak into a report.
#[test]
fn concurrent_sessions_are_bit_identical_across_threads() {
    let mut baseline = Session::new().check_many(workload());
    zero_durations(&mut baseline);

    let workers: Vec<_> = (0..8)
        .map(|_| {
            thread::spawn(|| {
                let mut reports = Session::new().check_many(workload());
                zero_durations(&mut reports);
                reports
            })
        })
        .collect();
    for (index, worker) in workers.into_iter().enumerate() {
        let reports = worker.join().expect("worker thread completes");
        assert_eq!(reports, baseline, "thread {index} diverged from the main-thread baseline");
    }
}

/// A session may migrate between threads mid-life (ownership transfer):
/// results accumulated before the move remain fetchable after it, and
/// checking continues deterministically.
#[test]
fn a_session_moved_across_threads_keeps_its_state() {
    let session = Session::new();
    let first = session.check(CheckRequest::new(prop("P").or(prop("P").not())).decide());
    assert!(first.verdict.passed());
    let handle = session.submit(CheckRequest::new(prop("Q").implies(prop("Q"))).decide());

    // Move the session (and the pending handle) into another thread.
    let joined = thread::spawn(move || {
        let report = session.wait(&handle);
        (session, report)
    })
    .join()
    .expect("the migrated session thread completes");
    let (session, report) = joined;
    assert!(report.verdict.passed(), "pending work resolves after the move");

    // And back on this thread, the same session keeps checking.
    let last = session.check(CheckRequest::new(prop("R").and(prop("R").not()).not()).decide());
    assert!(last.verdict.passed());
}

/// A short witness trace for the blocking explore job: P at step 0, Q from
/// step 1 on.
fn witness() -> Trace {
    let mut builder = TraceBuilder::new();
    builder.assert_prop(Prop::plain("P"));
    builder.commit();
    builder.retract_prop(&Prop::plain("P"));
    builder.assert_prop(Prop::plain("Q"));
    builder.commit();
    builder.finish()
}

/// The PR-10 acceptance test: `submit()` accepts and interns a new formula
/// while a prior job is **provably mid-flight** (its run producer blocks on
/// a flag until the new job has been submitted, run, and waited on), and
/// both reports come back bit-identical to sequential execution of the same
/// requests.  Under the old stop-the-world snapshot this deadlocked by
/// design; the multiversion arena makes it the daemon's steady state.
#[test]
fn submit_interns_new_work_while_a_prior_job_is_mid_flight() {
    let started = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));

    let blocking_source = {
        let started = Arc::clone(&started);
        let release = Arc::clone(&release);
        RunSource::lazy(move || {
            let started = Arc::clone(&started);
            let release = Arc::clone(&release);
            let mut emitted = 0usize;
            std::iter::from_fn(move || {
                if emitted == 0 {
                    started.store(true, Ordering::SeqCst);
                    while !release.load(Ordering::SeqCst) {
                        thread::yield_now();
                    }
                }
                emitted += 1;
                (emitted <= 3).then(witness)
            })
        })
    };

    let explore = CheckRequest::new(prop("P").or(prop("Q")))
        .over_run_source(blocking_source)
        .with_parallelism(Parallelism::Off);
    // Explicitly sequential (overriding `ILOGIC_TEST_PARALLEL`): a job
    // drained as part of a batch always runs single-threaded, so the
    // sequential reference must report the same worker count.
    let decide =
        CheckRequest::new(prop("R").implies(prop("R"))).decide().with_parallelism(Parallelism::Off);

    let session = Session::new();
    let (mut mid_flight, mut interned_during) = thread::scope(|scope| {
        let first = session.submit(explore.clone());
        let session = &session;
        let runner = scope.spawn(move || session.wait(&first));

        // Only proceed once the explore job is genuinely inside its run
        // producer — mid-flight, not merely queued.
        while !started.load(Ordering::SeqCst) {
            thread::yield_now();
        }

        // The whole point: a new formula is accepted, interned, dispatched,
        // and *completed* while the first job is still blocked mid-run.
        let nodes_before = session.arena().formula_count();
        let second = session.submit(decide.clone());
        let second_report = session.wait(&second);
        assert!(second_report.verdict.passed(), "{second_report:?}");
        assert!(
            session.arena().formula_count() > nodes_before,
            "the second submit interned new ids while the first job ran"
        );

        release.store(true, Ordering::SeqCst);
        let first_report = runner.join().expect("the mid-flight job completes");
        (first_report, second_report)
    });

    // Sequential execution of the same two requests on a fresh session (the
    // release flag stays up, so the source no longer blocks).
    let sequential = Session::new();
    let mut explore_sequential = sequential.check(explore);
    let mut decide_sequential = sequential.check(decide);
    for report in
        [&mut mid_flight, &mut interned_during, &mut explore_sequential, &mut decide_sequential]
    {
        normalize(report);
    }
    assert_eq!(mid_flight, explore_sequential, "the interrupted job's report is unchanged");
    assert_eq!(interned_during, decide_sequential, "the mid-flight submit's report is unchanged");
}

/// Seeded interleaving sweep (the satellite "proptest"): a duplicate-heavy
/// request stream is submitted one job at a time with fresh formulas
/// interned between submits, at `Fixed(0/2/4)` workers.  Each job must
/// resolve exactly its version's ids — interning noise around it must not
/// perturb a single answer — so every report is compared against a cold
/// single-request session, duplicates must replay their first occurrence
/// bit-for-bit, and the three worker counts must agree on everything.
#[test]
fn interleaved_interning_never_perturbs_in_flight_checks() {
    let mut generator = FormulaGenerator::from_seed(
        0xA11C_E5ED,
        GeneratorConfig { max_depth: 3, ..GeneratorConfig::default() },
    );
    let distinct: Vec<Formula> = (0..8).map(|_| generator.next_formula()).collect();
    let noise: Vec<Formula> = (0..18).map(|_| generator.next_formula()).collect();
    // Every third request repeats an earlier body: cache hits under
    // interleaved interning.
    let requests: Vec<CheckRequest> = (0..18)
        .map(|job| {
            let formula = if job % 3 == 2 {
                &distinct[((job - 1) / 2) % 8]
            } else {
                &distinct[(job / 2) % 8]
            };
            CheckRequest::new(formula.clone()).decide()
        })
        .collect();

    // Cold references: one fresh, cache-off, sequential session per request.
    let references: Vec<CheckReport> = requests
        .iter()
        .map(|request| {
            Session::new()
                .with_verdict_cache(false)
                .check(request.clone().with_parallelism(Parallelism::Off))
        })
        .collect();

    let mut per_worker_runs: Vec<Vec<CheckReport>> = Vec::new();
    for workers in [0usize, 2, 4] {
        let session = Session::new().with_parallelism(Parallelism::Fixed(workers));
        let interner = session.interner();
        let checker = session.checker();
        let mut handles = Vec::new();
        for (job, request) in requests.iter().enumerate() {
            handles.push(checker.submit(request.clone()));
            // Interleave: intern noise the queued jobs must *not* see, and
            // verify the version handle ratchets forward as ids append.
            let before = interner.version();
            let id = interner.intern(&noise[job]);
            assert!(interner.version() >= before, "versions are monotone");
            assert_eq!(&interner.extract(id), &noise[job], "interned ids round-trip");
            // Drain a prefix mid-stream so checks and interning overlap.
            if job % 3 == 0 {
                checker.run_pending();
            }
        }
        let reports: Vec<CheckReport> = handles.iter().map(|handle| checker.wait(handle)).collect();

        for (job, (report, reference)) in reports.iter().zip(&references).enumerate() {
            assert_eq!(
                report.verdict, reference.verdict,
                "job {job} at {workers} workers diverged from its cold reference"
            );
            assert_eq!(report.failing_index, reference.failing_index, "job {job} index");
            assert_eq!(report.stats.exhausted, reference.stats.exhausted, "job {job} exhaustion");
        }
        // Duplicates replay their first occurrence bit-for-bit (the cache
        // counters themselves and wall clock aside).
        for job in (2..18).step_by(3) {
            let first = (0..job)
                .find(|&earlier| requests[earlier].formula() == requests[job].formula())
                .expect("every third request repeats an earlier body");
            let mut replayed = reports[job].clone();
            let mut original = reports[first].clone();
            assert!(replayed.stats.cache.hits > 0, "job {job} was served from the cache");
            for report in [&mut replayed, &mut original] {
                normalize(report);
                report.stats.cache = CacheStats::default();
                // The arena-occupancy gauge reads the arena *now*; the noise
                // interned between the two occurrences legitimately grew it.
                report.stats.arena_nodes = 0;
            }
            assert_eq!(replayed, original, "job {job} must replay job {first} bit-for-bit");
        }
        let mut normalized = reports;
        zero_durations(&mut normalized);
        per_worker_runs.push(normalized);
    }
    assert_eq!(per_worker_runs[0], per_worker_runs[1], "workers 0 vs 2 diverged");
    assert_eq!(per_worker_runs[0], per_worker_runs[2], "workers 0 vs 4 diverged");
}
