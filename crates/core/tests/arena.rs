//! Arena coverage: `extract(intern(f)) == f` round-trips over the parser's
//! corpus and over randomly generated formulas, interning the V1–V16 catalogue
//! shares subterms (hash-consing actually deduplicates), and the memoized
//! arena evaluator agrees with the reference semantics.

use proptest::prelude::*;

use ilogic_core::arena::{FormulaArena, MemoEvaluator};
use ilogic_core::dsl::*;
use ilogic_core::parser::parse_formula;
use ilogic_core::prelude::*;
use ilogic_core::valid;

/// The shared concrete-syntax corpus (every grammar production), re-exported
/// from the parser so all suites exercise the same formulas.
const PARSER_CORPUS: &[&str] = ilogic_core::parser::CORPUS;

#[test]
fn parser_corpus_round_trips_through_the_arena() {
    let mut arena = FormulaArena::new();
    for source in PARSER_CORPUS {
        let formula = parse_formula(source).unwrap_or_else(|e| panic!("corpus `{source}`: {e}"));
        let id = arena.intern(&formula);
        assert_eq!(
            arena.extract(id),
            formula,
            "extract(intern(f)) differs from f for corpus entry `{source}`"
        );
        // Interning the extraction lands on the same id (idempotence).
        let again = arena.intern(&arena.extract(id));
        assert_eq!(id, again, "re-interning `{source}` produced a different id");
    }
}

#[test]
fn catalogue_interning_shares_subterms() {
    let mut arena = FormulaArena::new();
    let catalogue = valid::catalogue();
    let boxed_nodes: usize = catalogue.iter().map(|(_, f)| f.size()).sum();
    let ids: Vec<_> = catalogue.iter().map(|(_, f)| arena.intern(f)).collect();

    // Round-trip and id stability for every schema.
    for ((name, formula), id) in catalogue.iter().zip(&ids) {
        assert_eq!(&arena.extract(*id), formula, "{name} does not round-trip");
        assert_eq!(arena.intern(formula), *id, "{name} re-interns to a new id");
    }

    // Hash-consing must make the arena strictly smaller than the sum of the
    // boxed trees: the catalogue reuses P, Q and the A/B/C events throughout.
    let arena_nodes = arena.formula_count() + arena.term_count();
    assert!(
        arena_nodes < boxed_nodes / 2,
        "expected substantial sharing: {arena_nodes} arena nodes vs {boxed_nodes} boxed nodes"
    );

    // The common `A => B` term is literally the same id wherever it occurs.
    let ab = arena.intern_term(&fwd(event(prop("A")), event(prop("B"))));
    let ab_again = arena.intern_term(&fwd(event(prop("A")), event(prop("B"))));
    assert_eq!(ab, ab_again);
}

fn arb_term(depth: u32) -> BoxedStrategy<IntervalTerm> {
    let leaf = prop_oneof![
        Just(event(prop("A"))),
        Just(event(prop("B"))),
        Just(event(prop("A").and(prop("C")))),
    ];
    leaf.prop_recursive(depth, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| fwd(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| bwd(a, b)),
            inner.clone().prop_map(fwd_from),
            inner.clone().prop_map(fwd_to),
            inner.clone().prop_map(begin),
            inner.clone().prop_map(end),
            inner.clone().prop_map(must),
        ]
    })
    .boxed()
}

fn arb_formula(depth: u32) -> BoxedStrategy<Formula> {
    let leaf = prop_oneof![
        Just(prop("A")),
        Just(prop("B")),
        Just(prop("C")),
        Just(prop_args("atEnq", [var("a")])),
        Just(Formula::True),
        Just(Formula::False),
    ];
    leaf.prop_recursive(depth, 24, 2, move |inner| {
        prop_oneof![
            inner.clone().prop_map(Formula::not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.clone().prop_map(Formula::always),
            inner.clone().prop_map(Formula::eventually),
            inner.clone().prop_map(|f| f.forall("a")),
            inner.clone().prop_map(|f| f.exists("a")),
            (arb_term(2), inner.clone()).prop_map(|(t, f)| f.within(t)),
        ]
    })
    .boxed()
}

fn arb_trace(max_len: usize) -> impl Strategy<Value = Trace> {
    proptest::collection::vec(proptest::collection::vec(any::<bool>(), 3), 1..=max_len).prop_map(
        |rows| {
            Trace::finite(
                rows.into_iter()
                    .enumerate()
                    .map(|(i, row)| {
                        let mut s = State::new();
                        for (p, held) in ["A", "B", "C"].iter().zip(row) {
                            if held {
                                s.insert(Prop::plain(*p));
                            }
                        }
                        if i % 2 == 0 {
                            s = s.with_args("atEnq", [i as i64]);
                        }
                        s
                    })
                    .collect(),
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The intern/extract bridge is lossless on arbitrary formulas.
    #[test]
    fn intern_extract_round_trips(formula in arb_formula(3)) {
        let mut arena = FormulaArena::new();
        let id = arena.intern(&formula);
        prop_assert_eq!(arena.extract(id), formula);
    }

    /// Structural equality coincides with id equality within one arena.
    #[test]
    fn equal_formulas_get_equal_ids(formula in arb_formula(3)) {
        let mut arena = FormulaArena::new();
        let id1 = arena.intern(&formula);
        let id2 = arena.intern(&formula.clone());
        prop_assert_eq!(id1, id2);
    }

    /// The memoized arena evaluator computes exactly the reference semantics.
    #[test]
    fn memo_evaluator_matches_reference(formula in arb_formula(3), trace in arb_trace(5)) {
        let mut arena = FormulaArena::new();
        let id = arena.intern(&formula);
        let mut memo = MemoEvaluator::new(&arena);
        let reference = Evaluator::new(&trace);
        prop_assert_eq!(
            memo.check(&trace, id),
            reference.check(&formula),
            "disagreement on {} over {}", formula, trace
        );
    }
}
