//! Experiment `V-4`: exhaustive bounded-model confirmation of the Chapter 4
//! valid-formula catalogue, plus refutation checks showing the bounded checker
//! has teeth.

use ilogic_core::bounded::BoundedChecker;
use ilogic_core::dsl::*;
use ilogic_core::valid;

#[test]
fn catalogue_holds_on_all_models_over_two_events_up_to_length_three() {
    let checker = BoundedChecker::new(["P", "A", "B"], 3);
    for (name, formula) in valid::catalogue() {
        // V15 and V16 range over three interval terms; keep their alphabet at
        // the same size but accept the longer runtime.
        assert!(
            checker.valid_up_to_bound(&formula),
            "{name} refuted: {:?}",
            checker.counterexample(&formula)
        );
    }
}

#[test]
fn catalogue_instances_with_q_alphabet() {
    // A different instantiation exercising the Q proposition of V1–V2.
    let checker = BoundedChecker::new(["P", "Q", "A"], 2);
    for (name, formula) in valid::catalogue() {
        assert!(checker.valid_up_to_bound(&formula), "{name} refuted");
    }
}

#[test]
fn near_misses_are_refuted() {
    let checker = BoundedChecker::new(["P", "A", "B"], 3);
    // [I]α ⊃ α is not valid (the interval starts later than the context).
    let not_valid = always(prop("P")).within(fwd_from(event(prop("A")))).implies(always(prop("P")));
    assert!(checker.counterexample(&not_valid).is_some());
    // ◇-distribution over conjunction fails: <>(P ∧ A) vs <>P ∧ <>A.
    let wrong = eventually(prop("P"))
        .and(eventually(prop("A")))
        .implies(eventually(prop("P").and(prop("A"))));
    assert!(checker.counterexample(&wrong).is_some());
    // The converse of V8 is not valid.
    let converse_v8 =
        always(prop("P")).within(fwd_from(event(prop("A")))).implies(always(prop("P")));
    assert!(checker.counterexample(&converse_v8).is_some());
}

#[test]
fn star_reduction_preserves_catalogue_validity() {
    use ilogic_core::star::eliminate_star;
    let checker = BoundedChecker::new(["P", "A", "B"], 2);
    for (name, formula) in valid::catalogue() {
        let reduced = eliminate_star(&formula);
        assert!(checker.valid_up_to_bound(&reduced), "{name} reduced form refuted");
    }
}
