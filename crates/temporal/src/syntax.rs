//! Abstract syntax of the discrete linear-time propositional temporal logic of
//! Appendix B ("A Decision Procedure for Combinations of Propositional Temporal
//! Logic and Other Specialized Theories").
//!
//! The logic has the Boolean connectives, the unary temporal connectives `□`
//! (henceforth), `◇` (eventually) and `◦` (next time), and the binary *weak*
//! `Until` connective: following the report, `U(p, q)` is true if `p` is
//! henceforth true and `q` never becomes true.
//!
//! Atoms are either uninterpreted propositions or constraints of a specialized
//! theory (linear arithmetic over integer-valued variables, equalities, ...).
//! Variables occurring in constraint atoms are classified as *state* variables
//! (their value may change from instant to instant) or *extralogical* variables
//! (their value is fixed for the whole computation); the classification is held
//! in a [`VarSpec`] passed to the decision procedures rather than in the syntax.

use std::fmt;

/// An arithmetic term over integer-valued variables, used inside constraint atoms.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A named variable.
    Var(String),
    /// An integer constant.
    Const(i64),
    /// Sum of two terms.
    Add(Box<Term>, Box<Term>),
    /// Difference of two terms.
    Sub(Box<Term>, Box<Term>),
    /// Multiplication by an integer constant.
    Mul(i64, Box<Term>),
    /// Arithmetic negation.
    Neg(Box<Term>),
}

impl Term {
    /// A variable term.
    pub fn var(name: impl Into<String>) -> Term {
        Term::Var(name.into())
    }

    /// A constant term.
    pub fn int(value: i64) -> Term {
        Term::Const(value)
    }

    /// `self + other`.
    pub fn plus(self, other: Term) -> Term {
        Term::Add(Box::new(self), Box::new(other))
    }

    /// `self - other`.
    pub fn minus(self, other: Term) -> Term {
        Term::Sub(Box::new(self), Box::new(other))
    }

    /// `k * self`.
    pub fn times(self, k: i64) -> Term {
        Term::Mul(k, Box::new(self))
    }

    /// Collects the variables occurring in the term into `out`.
    pub fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Term::Var(v) => {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
            Term::Const(_) => {}
            Term::Add(a, b) | Term::Sub(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Term::Mul(_, a) | Term::Neg(a) => a.collect_vars(out),
        }
    }

    /// Evaluates the term under an assignment of integers to variables.
    ///
    /// Returns `None` if a variable is unassigned.
    pub fn eval(&self, lookup: &dyn Fn(&str) -> Option<i64>) -> Option<i64> {
        match self {
            Term::Var(v) => lookup(v),
            Term::Const(c) => Some(*c),
            Term::Add(a, b) => Some(a.eval(lookup)?.wrapping_add(b.eval(lookup)?)),
            Term::Sub(a, b) => Some(a.eval(lookup)?.wrapping_sub(b.eval(lookup)?)),
            Term::Mul(k, a) => Some(k.wrapping_mul(a.eval(lookup)?)),
            Term::Neg(a) => Some(-a.eval(lookup)?),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
            Term::Add(a, b) => write!(f, "({a} + {b})"),
            Term::Sub(a, b) => write!(f, "({a} - {b})"),
            Term::Mul(k, a) => write!(f, "{k}*{a}"),
            Term::Neg(a) => write!(f, "-{a}"),
        }
    }
}

/// Comparison operator of a constraint atom.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CmpOp {
    /// Equality.
    Eq,
    /// Disequality.
    Ne,
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// The operator satisfied exactly when `self` is not.
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// Evaluates `lhs op rhs` over the integers.
    pub fn eval(self, lhs: i64, rhs: i64) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "/=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// An atom of the logic: an uninterpreted proposition or a specialized-theory constraint.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Atom {
    /// An uninterpreted proposition, e.g. `P`.
    Prop(String),
    /// A constraint over integer terms, e.g. `x + 1 <= y`.
    Cmp {
        /// Left-hand side.
        lhs: Term,
        /// Comparison operator.
        op: CmpOp,
        /// Right-hand side.
        rhs: Term,
    },
}

impl Atom {
    /// An uninterpreted proposition atom.
    pub fn prop(name: impl Into<String>) -> Atom {
        Atom::Prop(name.into())
    }

    /// A constraint atom `lhs op rhs`.
    pub fn cmp(lhs: Term, op: CmpOp, rhs: Term) -> Atom {
        Atom::Cmp { lhs, op, rhs }
    }

    /// Collects the variables occurring in the atom.
    pub fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Atom::Prop(_) => {}
            Atom::Cmp { lhs, rhs, .. } => {
                lhs.collect_vars(out);
                rhs.collect_vars(out);
            }
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Prop(p) => write!(f, "{p}"),
            Atom::Cmp { lhs, op, rhs } => write!(f, "{lhs} {op} {rhs}"),
        }
    }
}

/// A literal: an atom with a polarity.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Literal {
    /// The underlying atom.
    pub atom: Atom,
    /// `true` for the atom itself, `false` for its negation.
    pub positive: bool,
}

impl Literal {
    /// A positive literal.
    pub fn pos(atom: Atom) -> Literal {
        Literal { atom, positive: true }
    }

    /// A negative literal.
    pub fn neg(atom: Atom) -> Literal {
        Literal { atom, positive: false }
    }

    /// The complementary literal.
    pub fn complement(&self) -> Literal {
        Literal { atom: self.atom.clone(), positive: !self.positive }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.positive {
            write!(f, "{}", self.atom)
        } else {
            write!(f, "~{}", self.atom)
        }
    }
}

/// A formula of discrete linear-time propositional temporal logic.
///
/// `Until` is the *weak* until of the report: `U(p, q)` holds if `□p` holds or
/// there is a future instant at which `q` holds and `p` holds at every instant
/// strictly before it (from now on).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Ltl {
    /// The constant true.
    True,
    /// The constant false.
    False,
    /// An atom.
    Atom(Atom),
    /// Negation.
    Not(Box<Ltl>),
    /// Conjunction.
    And(Box<Ltl>, Box<Ltl>),
    /// Disjunction.
    Or(Box<Ltl>, Box<Ltl>),
    /// Next time (`◦`).
    Next(Box<Ltl>),
    /// Henceforth (`□`).
    Always(Box<Ltl>),
    /// Eventually (`◇`).
    Eventually(Box<Ltl>),
    /// Weak until (`U`).
    Until(Box<Ltl>, Box<Ltl>),
}

impl Ltl {
    /// A propositional atom.
    pub fn prop(name: impl Into<String>) -> Ltl {
        Ltl::Atom(Atom::prop(name))
    }

    /// A constraint atom.
    pub fn cmp(lhs: Term, op: CmpOp, rhs: Term) -> Ltl {
        Ltl::Atom(Atom::cmp(lhs, op, rhs))
    }

    /// Negation, with trivial simplification of double negation and constants.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Ltl {
        match self {
            Ltl::True => Ltl::False,
            Ltl::False => Ltl::True,
            Ltl::Not(inner) => *inner,
            other => Ltl::Not(Box::new(other)),
        }
    }

    /// Conjunction, with constant simplification.
    pub fn and(self, other: Ltl) -> Ltl {
        match (self, other) {
            (Ltl::True, b) => b,
            (a, Ltl::True) => a,
            (Ltl::False, _) | (_, Ltl::False) => Ltl::False,
            (a, b) => Ltl::And(Box::new(a), Box::new(b)),
        }
    }

    /// Disjunction, with constant simplification.
    pub fn or(self, other: Ltl) -> Ltl {
        match (self, other) {
            (Ltl::False, b) => b,
            (a, Ltl::False) => a,
            (Ltl::True, _) | (_, Ltl::True) => Ltl::True,
            (a, b) => Ltl::Or(Box::new(a), Box::new(b)),
        }
    }

    /// Material implication `self ⊃ other`, expressed with `¬` and `∨`.
    pub fn implies(self, other: Ltl) -> Ltl {
        self.not().or(other)
    }

    /// Biconditional, expressed as conjunction of two implications.
    pub fn iff(self, other: Ltl) -> Ltl {
        self.clone().implies(other.clone()).and(other.implies(self))
    }

    /// Next time.
    pub fn next(self) -> Ltl {
        Ltl::Next(Box::new(self))
    }

    /// Henceforth.
    pub fn always(self) -> Ltl {
        Ltl::Always(Box::new(self))
    }

    /// Eventually.
    pub fn eventually(self) -> Ltl {
        Ltl::Eventually(Box::new(self))
    }

    /// Weak until (the report's `U`).
    pub fn until(self, other: Ltl) -> Ltl {
        Ltl::Until(Box::new(self), Box::new(other))
    }

    /// Strong until: weak until conjoined with the eventuality of the second argument.
    pub fn strong_until(self, other: Ltl) -> Ltl {
        self.until(other.clone()).and(other.eventually())
    }

    /// Conjunction of an iterator of formulas (`True` when empty).
    pub fn conj<I: IntoIterator<Item = Ltl>>(items: I) -> Ltl {
        items.into_iter().fold(Ltl::True, Ltl::and)
    }

    /// Disjunction of an iterator of formulas (`False` when empty).
    pub fn disj<I: IntoIterator<Item = Ltl>>(items: I) -> Ltl {
        items.into_iter().fold(Ltl::False, Ltl::or)
    }

    /// Collects the distinct atoms of the formula, in first-occurrence order.
    pub fn atoms(&self) -> Vec<Atom> {
        let mut out = Vec::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms(&self, out: &mut Vec<Atom>) {
        match self {
            Ltl::True | Ltl::False => {}
            Ltl::Atom(a) => {
                if !out.contains(a) {
                    out.push(a.clone());
                }
            }
            Ltl::Not(a) | Ltl::Next(a) | Ltl::Always(a) | Ltl::Eventually(a) => {
                a.collect_atoms(out);
            }
            Ltl::And(a, b) | Ltl::Or(a, b) | Ltl::Until(a, b) => {
                a.collect_atoms(out);
                b.collect_atoms(out);
            }
        }
    }

    /// Collects the distinct variables occurring in constraint atoms.
    pub fn variables(&self) -> Vec<String> {
        let mut out = Vec::new();
        for atom in self.atoms() {
            atom.collect_vars(&mut out);
        }
        out
    }

    /// The number of connectives and atoms in the formula, a rough size measure.
    pub fn size(&self) -> usize {
        match self {
            Ltl::True | Ltl::False | Ltl::Atom(_) => 1,
            Ltl::Not(a) | Ltl::Next(a) | Ltl::Always(a) | Ltl::Eventually(a) => 1 + a.size(),
            Ltl::And(a, b) | Ltl::Or(a, b) | Ltl::Until(a, b) => 1 + a.size() + b.size(),
        }
    }

    /// `true` if the formula contains no temporal connectives.
    pub fn is_state_formula(&self) -> bool {
        match self {
            Ltl::True | Ltl::False | Ltl::Atom(_) => true,
            Ltl::Not(a) => a.is_state_formula(),
            Ltl::And(a, b) | Ltl::Or(a, b) => a.is_state_formula() && b.is_state_formula(),
            Ltl::Next(_) | Ltl::Always(_) | Ltl::Eventually(_) | Ltl::Until(_, _) => false,
        }
    }
}

impl fmt::Display for Ltl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ltl::True => write!(f, "true"),
            Ltl::False => write!(f, "false"),
            Ltl::Atom(a) => write!(f, "{a}"),
            Ltl::Not(a) => write!(f, "~{a}"),
            Ltl::And(a, b) => write!(f, "({a} & {b})"),
            Ltl::Or(a, b) => write!(f, "({a} | {b})"),
            Ltl::Next(a) => write!(f, "o{a}"),
            Ltl::Always(a) => write!(f, "[]{a}"),
            Ltl::Eventually(a) => write!(f, "<>{a}"),
            Ltl::Until(a, b) => write!(f, "U({a}, {b})"),
        }
    }
}

/// Classification of constraint variables for the combined decision procedures.
///
/// State variables may take different values at different instants of time;
/// extralogical variables have the same value at all instants (Appendix B §2).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VarSpec {
    extralogical: Vec<String>,
}

impl VarSpec {
    /// A specification in which every variable is a state variable.
    pub fn all_state() -> VarSpec {
        VarSpec::default()
    }

    /// Builds a specification from a list of extralogical variable names.
    pub fn with_extralogical<I, S>(names: I) -> VarSpec
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        VarSpec { extralogical: names.into_iter().map(Into::into).collect() }
    }

    /// `true` if the named variable is extralogical (time-independent).
    pub fn is_extralogical(&self, name: &str) -> bool {
        self.extralogical.iter().any(|n| n == name)
    }

    /// Iterates over the extralogical variable names.
    pub fn extralogical(&self) -> impl Iterator<Item = &str> {
        self.extralogical.iter().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_simplify_constants() {
        let p = Ltl::prop("P");
        assert_eq!(p.clone().and(Ltl::True), p);
        assert_eq!(Ltl::True.and(p.clone()), p);
        assert_eq!(p.clone().and(Ltl::False), Ltl::False);
        assert_eq!(p.clone().or(Ltl::False), p);
        assert_eq!(p.clone().or(Ltl::True), Ltl::True);
        assert_eq!(p.clone().not().not(), p);
        assert_eq!(Ltl::True.not(), Ltl::False);
    }

    #[test]
    fn atoms_are_deduplicated() {
        let p = Ltl::prop("P");
        let q = Ltl::prop("Q");
        let f = p.clone().and(q.clone()).or(p.clone()).until(q);
        assert_eq!(f.atoms().len(), 2);
    }

    #[test]
    fn size_counts_connectives() {
        let f = Ltl::prop("P").and(Ltl::prop("Q")).always();
        assert_eq!(f.size(), 4);
    }

    #[test]
    fn term_eval_and_vars() {
        let t = Term::var("x").plus(Term::int(3)).times(2);
        let mut vars = Vec::new();
        t.collect_vars(&mut vars);
        assert_eq!(vars, vec!["x".to_string()]);
        let value = t.eval(&|name| if name == "x" { Some(4) } else { None });
        assert_eq!(value, Some(14));
    }

    #[test]
    fn cmp_op_negation_round_trips() {
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            assert_eq!(op.negate().negate(), op);
            for (a, b) in [(1, 2), (2, 2), (3, 2)] {
                assert_eq!(op.eval(a, b), !op.negate().eval(a, b));
            }
        }
    }

    #[test]
    fn state_formula_detection() {
        assert!(Ltl::prop("P").and(Ltl::prop("Q").not()).is_state_formula());
        assert!(!Ltl::prop("P").always().is_state_formula());
    }

    #[test]
    fn var_spec_classifies() {
        let spec = VarSpec::with_extralogical(["x"]);
        assert!(spec.is_extralogical("x"));
        assert!(!spec.is_extralogical("y"));
        assert!(VarSpec::all_state().extralogical().next().is_none());
    }

    #[test]
    fn display_is_nonempty() {
        let f = Ltl::prop("P").until(Ltl::cmp(Term::var("x"), CmpOp::Gt, Term::int(0)));
        assert!(!format!("{f}").is_empty());
        assert!(format!("{f}").contains("x > 0"));
    }
}
