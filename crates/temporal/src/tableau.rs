//! The tableau-like satisfiability graph of Appendix B §3.
//!
//! Given a temporal formula `B`, [`TableauGraph::build`] constructs a graph
//! `Graph(B)` representing the set of models of `B`.  Nodes represent states
//! and are labelled with the formulae that must hold of the remaining
//! computation; edges are labelled with a conjunction of literals (the
//! propositional commitment made in the source state), a set of
//! *eventualities* (formulae that must eventually be satisfied on any
//! continuation) and a set of *satisfied eventualities* (eventualities
//! discharged by this very transition).
//!
//! [`prune`] implements the `Iter` deletion loop: edges whose literal label is
//! inconsistent (propositionally, or in a specialized theory for Algorithm A)
//! are removed, edges carrying an eventuality that can no longer be satisfied
//! by any path are removed, and nodes with no outgoing edges are removed, until
//! a fixpoint is reached.  `B` is satisfiable iff the initial node survives.
//!
//! # Parallelism
//!
//! Both phases fan out over the [`crate::pool`] worker pool —
//! [`TableauGraph::try_build_budgeted`] expands each breadth-first frontier's
//! node labels concurrently (expansion is a pure function of the label set)
//! and merges the results in sequential frontier order on the calling
//! thread, and [`prune_with`] stripes the per-edge theory checks and the
//! per-eventuality reachability analyses.  The merge discipline makes the
//! graph *bit-identical* at every worker count: same node ids, same edge
//! ids, same exhaustion answers under the structural caps of a
//! [`crate::pool::ResourceBudget`].  Construction cost is
//! dominated by the expansion of disjunction-heavy labels, which is exactly
//! the part that parallelizes; note however that for the measured
//! `[ => Q ] []P` family the tableau is *not* the bottleneck (97 nodes /
//! 3362 edges in milliseconds) — the blowup lives in the
//! [`crate::algorithm_b`] condition fixpoint downstream.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use crate::pool::{Exhaustion, Parallelism, ResourceBudget, WorkerPool};
use crate::syntax::{Atom, Literal, Ltl};
use crate::theory::{Theory, TheoryResult};

/// Identifier of a node in a [`TableauGraph`].
pub type NodeId = usize;
/// Identifier of an edge in a [`TableauGraph`].
pub type EdgeId = usize;

/// An edge of the tableau graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Edge {
    /// Source node.
    pub from: NodeId,
    /// Target node.
    pub to: NodeId,
    /// The conjunction of literals labelling the edge (its "propositional part").
    pub literals: Vec<Literal>,
    /// Eventualities promised by this edge: formulae that must hold at some
    /// later instant on every model continuing through this edge.
    pub eventualities: BTreeSet<Ltl>,
    /// Eventualities discharged by this edge: the labelled formula holds in the
    /// source state of this transition.
    pub fulfilled: BTreeSet<Ltl>,
}

/// The tableau graph of a formula.
#[derive(Clone, Debug)]
pub struct TableauGraph {
    labels: Vec<BTreeSet<Ltl>>,
    edges: Vec<Edge>,
    outgoing: Vec<Vec<EdgeId>>,
    initial: NodeId,
    ev_index: EventualityIndex,
    plan: SweepPlan,
}

/// Per-graph eventuality index, derived once at the end of construction:
/// the distinct eventualities of the graph in ascending order, plus
/// CSR-packed per-edge lists of the indices each edge mentions
/// (`eventualities`) and fulfills (`fulfilled`).  Algorithm B's fixpoint
/// engines and the Boolean projection consult it instead of re-deriving the
/// union and re-probing the per-edge `BTreeSet`s — deep structural `Ltl`
/// comparisons that used to dominate whole evaluator calls — on every run
/// over the same graph.
#[derive(Clone, Debug, Default)]
pub(crate) struct EventualityIndex {
    /// The distinct eventualities, ascending in `Ltl`'s order.
    pub(crate) all: Vec<Ltl>,
    /// Concatenated ascending per-edge lists of mentioned indices.
    mentions: Vec<u32>,
    /// `mentions` range of edge `eid`: `starts[eid]..starts[eid + 1]`.
    mentions_starts: Vec<u32>,
    /// Concatenated ascending per-edge lists of fulfilled indices.
    fulfilled: Vec<u32>,
    /// `fulfilled` range of edge `eid`.
    fulfilled_starts: Vec<u32>,
}

impl EventualityIndex {
    fn build(edges: &[Edge]) -> EventualityIndex {
        let mut set: BTreeSet<&Ltl> = BTreeSet::new();
        for edge in edges {
            set.extend(edge.eventualities.iter());
        }
        let all: Vec<Ltl> = set.into_iter().cloned().collect();
        let mut mentions = Vec::new();
        let mut mentions_starts = Vec::with_capacity(edges.len() + 1);
        let mut fulfilled = Vec::new();
        let mut fulfilled_starts = Vec::with_capacity(edges.len() + 1);
        mentions_starts.push(0);
        fulfilled_starts.push(0);
        for edge in edges {
            // Both `BTreeSet`s iterate ascending in the same order as `all`,
            // so the CSR rows come out ascending.
            for ev in &edge.eventualities {
                if let Ok(ei) = all.binary_search(ev) {
                    mentions.push(ei as u32);
                }
            }
            mentions_starts.push(mentions.len() as u32);
            for ev in &edge.fulfilled {
                if let Ok(ei) = all.binary_search(ev) {
                    fulfilled.push(ei as u32);
                }
            }
            fulfilled_starts.push(fulfilled.len() as u32);
        }
        EventualityIndex { all, mentions, mentions_starts, fulfilled, fulfilled_starts }
    }

    /// Ascending indices (into [`EventualityIndex::all`]) of the
    /// eventualities edge `eid` mentions.
    pub(crate) fn mentions(&self, eid: EdgeId) -> &[u32] {
        &self.mentions[self.mentions_starts[eid] as usize..self.mentions_starts[eid + 1] as usize]
    }

    /// Ascending indices of the eventualities edge `eid` fulfills.
    pub(crate) fn fulfilled(&self, eid: EdgeId) -> &[u32] {
        &self.fulfilled
            [self.fulfilled_starts[eid] as usize..self.fulfilled_starts[eid + 1] as usize]
    }
}

/// Per-graph fixpoint plan, derived once at the end of construction for the
/// semi-naive worklist engines of [`crate::algorithm_b`]: the strongly
/// connected components in reverse-topological order, the reverse-dependency
/// CSR that turns a changed `delete`/`fail` value into the tasks to mark
/// dirty, each edge's target node as a flat array, and the dense
/// edge × eventuality "not fulfilled" table the `fail` equations branch on.
/// Every entry is a pure function of the finished graph, so computing it
/// here amortizes it across every fixpoint run — most visibly across the
/// thousands of Boolean-projected evaluations one evaluated decision makes
/// over the same tableau.  The full-sweep and baseline disciplines
/// deliberately do *not* read it: they preserve their original per-call
/// derivations as the comparison anchors.
#[derive(Clone, Debug, Default)]
pub(crate) struct SweepPlan {
    /// Strongly connected components, reverse-topological (every edge leaves
    /// a component listed no earlier than its target's).
    pub(crate) sccs: Vec<Vec<NodeId>>,
    /// `rev_preds` range of node `m`: `rev_starts[m]..rev_starts[m + 1]`.
    rev_starts: Vec<u32>,
    /// Concatenated ascending predecessor lists: the nodes whose equations
    /// read the values at `m`.
    rev_preds: Vec<u32>,
    /// Target node of each edge.
    pub(crate) targets: Vec<u32>,
    /// `unfulfilled[eid * ne + ei]`: edge `eid` does not fulfill eventuality
    /// `ei` (an index into [`EventualityIndex::all`]).
    pub(crate) unfulfilled: Vec<bool>,
}

impl SweepPlan {
    fn build(graph: &TableauGraph) -> SweepPlan {
        let n = graph.node_count();
        let sccs = crate::algorithm_b::strongly_connected_components(graph);
        let mut rev_starts = vec![0u32; n + 1];
        for node in 0..n {
            for &eid in graph.outgoing(node) {
                rev_starts[graph.edges[eid].to + 1] += 1;
            }
        }
        for m in 0..n {
            rev_starts[m + 1] += rev_starts[m];
        }
        let mut rev_preds = vec![0u32; rev_starts[n] as usize];
        let mut cursor = rev_starts.clone();
        // The outer loop ascends in `node`, so every row comes out ascending.
        for node in 0..n {
            for &eid in graph.outgoing(node) {
                let to = graph.edges[eid].to;
                rev_preds[cursor[to] as usize] = node as u32;
                cursor[to] += 1;
            }
        }
        let ne = graph.ev_index.all.len();
        let targets = graph.edges.iter().map(|edge| edge.to as u32).collect();
        let mut unfulfilled = vec![true; graph.edges.len() * ne];
        for eid in 0..graph.edges.len() {
            for &ei in graph.ev_index.fulfilled(eid) {
                unfulfilled[eid * ne + ei as usize] = false;
            }
        }
        SweepPlan { sccs, rev_starts, rev_preds, targets, unfulfilled }
    }

    /// Nodes whose equations read the values at `m`, ascending.
    pub(crate) fn preds_of(&self, m: NodeId) -> &[u32] {
        &self.rev_preds[self.rev_starts[m] as usize..self.rev_starts[m + 1] as usize]
    }
}

/// One saturated expansion of a node label set.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct Expansion {
    literals: BTreeMap<Atom, bool>,
    next: BTreeSet<Ltl>,
    eventualities: BTreeSet<Ltl>,
    fulfilled: BTreeSet<Ltl>,
}

impl TableauGraph {
    /// Constructs the graph `Graph(formula)` representing the models of `formula`.
    pub fn build(formula: &Ltl) -> TableauGraph {
        TableauGraph::try_build_budgeted(formula, &ResourceBudget::unbounded(), Parallelism::Off)
            .expect("unbounded tableau construction cannot exceed its limits")
    }

    /// Constructs `Graph(formula)` under a [`ResourceBudget`], with the
    /// frontier expanded across a worker pool; the `Err` names the first
    /// resource that ran out ([`Exhaustion::Nodes`] / [`Exhaustion::Edges`]
    /// for the structural caps, [`Exhaustion::Deadline`] /
    /// [`Exhaustion::Cancelled`] for the cooperative cutoffs, polled once per
    /// BFS level).
    ///
    /// Construction is a breadth-first saturation: each BFS level's node
    /// labels are expanded (a pure function of the label set) concurrently,
    /// and the per-node expansion lists are then merged on the calling thread
    /// *in sequential frontier order* — interning target labels, assigning
    /// node and edge identifiers, and applying the structural cap checks in
    /// exactly the order the single-threaded loop would.  The resulting graph
    /// is therefore bit-identical (same node ids, same edge ids, same edge
    /// order) at every worker count, and structural-cap `Err` answers agree
    /// too: expansion caps are taken from the level-start edge budget, which
    /// can only postpone a blowup into the merge's own limit checks, never
    /// change the answer.  Only the deadline/cancellation cutoffs are
    /// timing-dependent.
    pub fn try_build_budgeted(
        formula: &Ltl,
        budget: &ResourceBudget,
        parallelism: Parallelism,
    ) -> Result<TableauGraph, Exhaustion> {
        let pool = WorkerPool::new(parallelism);
        let mut graph = TableauGraph {
            labels: Vec::new(),
            edges: Vec::new(),
            outgoing: Vec::new(),
            initial: 0,
            ev_index: EventualityIndex::default(),
            plan: SweepPlan::default(),
        };
        let mut index: HashMap<BTreeSet<Ltl>, NodeId> = HashMap::new();

        let init_label: BTreeSet<Ltl> = [formula.clone()].into_iter().collect();
        let init = graph.intern(&mut index, init_label);
        graph.initial = init;

        let mut frontier: Vec<NodeId> = vec![init];
        let mut processed: BTreeSet<NodeId> = BTreeSet::new();
        while !frontier.is_empty() {
            if let Some(interrupt) = budget.interrupted() {
                return Err(interrupt);
            }
            // Replay the sequential queue discipline: dequeue in order,
            // skipping nodes already processed (a node can be discovered
            // twice before its turn comes).
            let level: Vec<NodeId> =
                frontier.drain(..).filter(|node| processed.insert(*node)).collect();
            if level.is_empty() {
                break;
            }
            // Every node of the level is expanded against the level-start
            // budget; the merge below re-applies the exact per-edge checks.
            let level_cap = budget.max_edges().saturating_sub(graph.edges.len());
            let expansions = expand_level(&graph.labels, &level, level_cap, &pool);
            for (&node, exps) in level.iter().zip(expansions) {
                // A worker that blew the level budget implies the sequential
                // loop would have exhausted `max_edges` at this node or an
                // earlier one — either way the edge cap is the answer.
                let Some(exps) = exps else {
                    return Err(Exhaustion::Edges);
                };
                for exp in exps {
                    let target_label = exp.next.clone();
                    let target = graph.intern(&mut index, target_label);
                    if graph.labels.len() > budget.max_nodes() {
                        return Err(Exhaustion::Nodes);
                    }
                    if graph.edges.len() >= budget.max_edges() {
                        return Err(Exhaustion::Edges);
                    }
                    if !processed.contains(&target) {
                        frontier.push(target);
                    }
                    let literals = exp
                        .literals
                        .iter()
                        .map(|(atom, positive)| Literal { atom: atom.clone(), positive: *positive })
                        .collect();
                    let edge = Edge {
                        from: node,
                        to: target,
                        literals,
                        eventualities: exp.eventualities,
                        fulfilled: exp.fulfilled,
                    };
                    let id = graph.edges.len();
                    graph.edges.push(edge);
                    graph.outgoing[node].push(id);
                }
            }
        }
        graph.ev_index = EventualityIndex::build(&graph.edges);
        graph.plan = SweepPlan::build(&graph);
        Ok(graph)
    }

    fn intern(
        &mut self,
        index: &mut HashMap<BTreeSet<Ltl>, NodeId>,
        label: BTreeSet<Ltl>,
    ) -> NodeId {
        if let Some(&id) = index.get(&label) {
            return id;
        }
        let id = self.labels.len();
        index.insert(label.clone(), id);
        self.labels.push(label);
        self.outgoing.push(Vec::new());
        id
    }

    /// The initial node.
    pub fn initial(&self) -> NodeId {
        self.initial
    }

    /// The number of nodes.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// The number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The label set of a node.
    pub fn label(&self, node: NodeId) -> &BTreeSet<Ltl> {
        &self.labels[node]
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The edge with the given id.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id]
    }

    /// Ids of the edges leaving `node`.
    pub fn outgoing(&self, node: NodeId) -> &[EdgeId] {
        &self.outgoing[node]
    }

    /// The distinct eventualities occurring on any edge, ascending in
    /// `Ltl`'s order (cached at construction).
    pub fn eventualities(&self) -> &[Ltl] {
        &self.ev_index.all
    }

    /// The per-graph eventuality index (see [`EventualityIndex`]).
    pub(crate) fn eventuality_index(&self) -> &EventualityIndex {
        &self.ev_index
    }

    /// The per-graph fixpoint plan of the semi-naive worklist engines.
    pub(crate) fn sweep_plan(&self) -> &SweepPlan {
        &self.plan
    }
}

/// A static size profile of the graph a formula *would* expand into,
/// computed from the AST alone — no node is ever interned, no edge built.
///
/// This is the closure-size hook behind the `ilogic-core` analysis pass:
/// node labels of [`TableauGraph`] are subsets of the formula's *next
/// components* (the formulas the expansion rules in this module can insert
/// into a node's next-set), so `2^components` bounds the node count and
/// `nodes × 2^atoms` bounds the edge count.  The bounds are loose — see the
/// calibration notes in `ARCHITECTURE.md` — but they are computed in
/// microseconds, which is the point.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClosureProfile {
    /// Number of distinct next components: `2^components` bounds the node
    /// count of the expanded graph.
    pub components: usize,
    /// Number of distinct atoms: each transition commits to a subset of the
    /// atoms, so `2^atoms` bounds the out-degree multiplicity per node pair.
    pub atoms: usize,
    /// Plain AST size of the formula.
    pub size: usize,
}

/// Computes the [`ClosureProfile`] of `formula` without building a graph.
///
/// The component set mirrors `expand_rec` exactly: `◦a` inserts `a` (or `¬a`
/// under negation), `□a` re-inserts itself, `◇a`/`U(p, q)`/`¬U(p, q)` insert
/// their deferred forms, and negations of `□`/`◇` insert the pushed-in dual.
pub fn closure_profile(formula: &Ltl) -> ClosureProfile {
    fn components(f: &Ltl, positive: bool, out: &mut BTreeSet<Ltl>) {
        match f {
            Ltl::True | Ltl::False | Ltl::Atom(_) => {}
            Ltl::Not(a) => components(a, !positive, out),
            Ltl::And(a, b) | Ltl::Or(a, b) => {
                components(a, positive, out);
                components(b, positive, out);
            }
            Ltl::Next(a) => {
                out.insert(if positive { (**a).clone() } else { (**a).clone().not() });
                components(a, positive, out);
            }
            Ltl::Always(a) => {
                if positive {
                    out.insert(f.clone());
                } else {
                    // ¬□a expands as ◇¬a, which defers itself.
                    out.insert((**a).clone().not().eventually());
                }
                components(a, positive, out);
                components(a, !positive, out);
            }
            Ltl::Eventually(a) => {
                if positive {
                    out.insert(f.clone());
                } else {
                    out.insert((**a).clone().not().always());
                }
                components(a, positive, out);
                components(a, !positive, out);
            }
            Ltl::Until(p, q) => {
                if positive {
                    out.insert(f.clone());
                } else {
                    out.insert(f.clone().not());
                }
                // Both polarities of both operands can surface during
                // expansion (q now / defer, ¬q ∧ ¬p now / defer).
                components(p, true, out);
                components(p, false, out);
                components(q, true, out);
                components(q, false, out);
            }
        }
    }
    let mut out = BTreeSet::new();
    components(formula, true, &mut out);
    ClosureProfile { components: out.len(), atoms: formula.atoms().len(), size: formula.size() }
}

/// Expands every node of one BFS level, striping the nodes across the worker
/// pool, and returns the expansion lists in level order.
///
/// Expansion is a pure function of the label set, so the stripes can run
/// concurrently; the deterministic part — interning targets and assigning
/// identifiers — stays with the caller's sequential merge.
fn expand_level(
    labels: &[BTreeSet<Ltl>],
    level: &[NodeId],
    budget: usize,
    pool: &WorkerPool,
) -> Vec<Option<Vec<Expansion>>> {
    pool.map(level.len(), |i| expand_set(&labels[level[i]], budget))
}

/// Expands a set of formulae into all of its saturated alternatives, or
/// `None` when more than `cap` alternatives would be produced.
fn expand_set(label: &BTreeSet<Ltl>, cap: usize) -> Option<Vec<Expansion>> {
    let mut results = Vec::new();
    let pending: Vec<Ltl> = label.iter().cloned().collect();
    if expand_rec(pending, BTreeSet::new(), Expansion::default(), &mut results, cap) {
        Some(results)
    } else {
        None
    }
}

/// Returns `false` when the expansion exceeded `cap` alternatives.
fn expand_rec(
    mut pending: Vec<Ltl>,
    mut seen: BTreeSet<Ltl>,
    mut acc: Expansion,
    results: &mut Vec<Expansion>,
    cap: usize,
) -> bool {
    loop {
        let Some(formula) = pending.pop() else {
            if results.len() >= cap {
                return false;
            }
            results.push(acc);
            return true;
        };
        if !seen.insert(formula.clone()) {
            continue;
        }
        match formula {
            Ltl::True => {}
            Ltl::False => return true, // inconsistent branch
            Ltl::Atom(atom) => {
                if !add_literal(&mut acc, atom, true) {
                    return true;
                }
            }
            Ltl::Not(inner) => match *inner {
                Ltl::True => return true,
                Ltl::False => {}
                Ltl::Atom(atom) => {
                    if !add_literal(&mut acc, atom, false) {
                        return true;
                    }
                }
                Ltl::Not(a) => pending.push(*a),
                Ltl::And(a, b) => {
                    // ¬(a ∧ b)  →  ¬a ∨ ¬b
                    pending.push(Ltl::Or(Box::new(a.not()), Box::new(b.not())));
                }
                Ltl::Or(a, b) => {
                    pending.push(a.not());
                    pending.push(b.not());
                }
                Ltl::Next(a) => {
                    acc.next.insert(a.not());
                }
                Ltl::Always(a) => pending.push(Ltl::Eventually(Box::new(a.not()))),
                Ltl::Eventually(a) => pending.push(Ltl::Always(Box::new(a.not()))),
                Ltl::Until(p, q) => {
                    // ¬U(p, q)  →  ¬q ∧ (¬p  ∨  ◦¬U(p, q))  with eventuality ¬p.
                    let not_p = p.clone().not();
                    let not_u = Ltl::Until(p, q.clone()).not();
                    pending.push(q.not());
                    // Branch 1: ¬p holds now (eventuality fulfilled).
                    let mut now = Expansion {
                        literals: acc.literals.clone(),
                        next: acc.next.clone(),
                        eventualities: acc.eventualities.clone(),
                        fulfilled: acc.fulfilled.clone(),
                    };
                    now.fulfilled.insert(not_p.clone());
                    let mut now_pending = pending.clone();
                    now_pending.push(not_p.clone());
                    if !expand_rec(now_pending, seen.clone(), now, results, cap) {
                        return false;
                    }
                    // Branch 2: defer; promise the eventuality ¬p.
                    acc.eventualities.insert(not_p);
                    acc.next.insert(not_u);
                    continue;
                }
            },
            Ltl::And(a, b) => {
                pending.push(*a);
                pending.push(*b);
            }
            Ltl::Or(a, b) => {
                let mut left_pending = pending.clone();
                left_pending.push(*a);
                if !expand_rec(left_pending, seen.clone(), acc.clone(), results, cap) {
                    return false;
                }
                pending.push(*b);
                continue;
            }
            Ltl::Next(a) => {
                acc.next.insert(*a);
            }
            Ltl::Always(a) => {
                // □a  →  a ∧ ◦□a
                acc.next.insert(Ltl::Always(a.clone()));
                pending.push(*a);
            }
            Ltl::Eventually(a) => {
                // ◇a  →  a  ∨  ◦◇a  (eventuality a).
                let body = (*a).clone();
                // Branch 1: a holds now (eventuality fulfilled).
                let mut now = acc.clone();
                now.fulfilled.insert(body.clone());
                let mut now_pending = pending.clone();
                now_pending.push(body.clone());
                if !expand_rec(now_pending, seen.clone(), now, results, cap) {
                    return false;
                }
                // Branch 2: defer.
                acc.eventualities.insert(body);
                acc.next.insert(Ltl::Eventually(a));
                continue;
            }
            Ltl::Until(p, q) => {
                // Weak until:  U(p, q)  →  q  ∨  (p ∧ ◦U(p, q)); no eventuality.
                let mut q_now = acc.clone();
                let mut q_pending = pending.clone();
                q_pending.push((*q).clone());
                q_now.fulfilled.insert((*q).clone());
                if !expand_rec(q_pending, seen.clone(), q_now, results, cap) {
                    return false;
                }
                pending.push((*p).clone());
                acc.next.insert(Ltl::Until(p, q));
                continue;
            }
        }
    }
}

/// Adds a literal to an expansion; returns `false` if it contradicts an existing literal.
fn add_literal(acc: &mut Expansion, atom: Atom, positive: bool) -> bool {
    match acc.literals.get(&atom) {
        Some(&existing) => existing == positive,
        None => {
            acc.literals.insert(atom, positive);
            true
        }
    }
}

/// The result of the `Iter` deletion loop.
#[derive(Clone, Debug)]
pub struct Pruned {
    node_alive: Vec<bool>,
    edge_alive: Vec<bool>,
    /// Number of passes of the outer deletion loop.
    pub iterations: usize,
}

impl Pruned {
    /// `true` if the node survived deletion.
    pub fn node_alive(&self, node: NodeId) -> bool {
        self.node_alive[node]
    }

    /// `true` if the edge survived deletion.
    pub fn edge_alive(&self, edge: EdgeId) -> bool {
        self.edge_alive[edge]
    }

    /// Number of surviving nodes.
    pub fn live_nodes(&self) -> usize {
        self.node_alive.iter().filter(|b| **b).count()
    }

    /// Number of surviving edges.
    pub fn live_edges(&self) -> usize {
        self.edge_alive.iter().filter(|b| **b).count()
    }
}

/// Runs the `Iter` deletion loop on `graph`, deleting edges whose literal
/// labels are unsatisfiable in `theory` (Algorithm A's extra deletion), edges
/// whose eventualities cannot be satisfied, and nodes with no outgoing edges.
pub fn prune(graph: &TableauGraph, theory: &dyn Theory) -> Pruned {
    prune_with(graph, theory, Parallelism::Off)
}

/// [`prune`] with the per-edge theory checks and the per-eventuality
/// reachability analyses fanned across a worker pool.
///
/// Both phases are pure functions of the current alive sets — the theory
/// filter is independent per edge and the fulfilling-reachability map is
/// independent per eventuality — so the deletion loop deletes exactly the
/// same edges in the same rounds at every worker count.
pub fn prune_with(graph: &TableauGraph, theory: &dyn Theory, parallelism: Parallelism) -> Pruned {
    prune_budgeted(graph, theory, parallelism, &ResourceBudget::unbounded())
        .expect("an unbudgeted prune cannot be interrupted")
}

/// [`prune_with`] under a [`ResourceBudget`]: the deletion loop is polynomial
/// (no structural cap applies), but the budget's deadline/cancellation
/// cutoffs are polled once per deletion round so a service can abandon a
/// prune on a very large graph.
pub fn prune_budgeted(
    graph: &TableauGraph,
    theory: &dyn Theory,
    parallelism: Parallelism,
    budget: &ResourceBudget,
) -> Result<Pruned, Exhaustion> {
    let pool = WorkerPool::new(parallelism);
    let eventualities = graph.eventualities();
    let mut node_alive = vec![true; graph.node_count()];
    let mut edge_alive: Vec<bool> = pool.map(graph.edge_count(), |i| {
        theory.satisfiable(&graph.edge(i).literals) == TheoryResult::Satisfiable
    });
    let mut iterations = 0;
    loop {
        if let Some(interrupt) = budget.interrupted() {
            return Err(interrupt);
        }
        iterations += 1;
        let mut changed = false;

        // Delete edges whose eventualities can no longer be satisfied.  The
        // backward-reachability map of each eventuality is independent of the
        // others, so the eventualities stripe across the pool; the shared
        // incoming-edge index is built once per round.
        let incoming = incoming_index(graph, &edge_alive);
        let reach: Vec<Vec<bool>> = pool.map(eventualities.len(), |i| {
            reachable_to_fulfilling(graph, &node_alive, &edge_alive, &incoming, &eventualities[i])
        });
        let reach: HashMap<&Ltl, Vec<bool>> = eventualities.iter().zip(reach).collect();
        for (id, edge) in graph.edges().iter().enumerate() {
            if !edge_alive[id] {
                continue;
            }
            for ev in &edge.eventualities {
                if !reach[ev][edge.to] {
                    edge_alive[id] = false;
                    changed = true;
                    break;
                }
            }
        }

        // Delete edges leading to or from dead nodes, and nodes with no live outgoing edge.
        for (id, edge) in graph.edges().iter().enumerate() {
            if edge_alive[id] && (!node_alive[edge.from] || !node_alive[edge.to]) {
                edge_alive[id] = false;
                changed = true;
            }
        }
        for (node, alive) in node_alive.iter_mut().enumerate() {
            if *alive && !graph.outgoing(node).iter().any(|&e| edge_alive[e]) {
                *alive = false;
                changed = true;
            }
        }

        if !changed {
            break;
        }
    }
    Ok(Pruned { node_alive, edge_alive, iterations })
}

/// The incoming live-edge index shared by every eventuality's reachability
/// pass of one deletion round.
fn incoming_index(graph: &TableauGraph, edge_alive: &[bool]) -> Vec<Vec<EdgeId>> {
    let mut incoming: Vec<Vec<EdgeId>> = vec![Vec::new(); graph.node_count()];
    for (id, edge) in graph.edges().iter().enumerate() {
        if edge_alive[id] {
            incoming[edge.to].push(id);
        }
    }
    incoming
}

/// Computes, for every node, whether a live edge fulfilling `ev` is reachable
/// from it through live edges (including taking the fulfilling edge itself).
fn reachable_to_fulfilling(
    graph: &TableauGraph,
    node_alive: &[bool],
    edge_alive: &[bool],
    incoming: &[Vec<EdgeId>],
    ev: &Ltl,
) -> Vec<bool> {
    let mut reach = vec![false; graph.node_count()];
    let mut queue: VecDeque<NodeId> = VecDeque::new();
    for (id, edge) in graph.edges().iter().enumerate() {
        if edge_alive[id]
            && node_alive[edge.from]
            && edge.fulfilled.contains(ev)
            && !reach[edge.from]
        {
            reach[edge.from] = true;
            queue.push_back(edge.from);
        }
    }
    // Backward closure over live edges.
    while let Some(node) = queue.pop_front() {
        for &eid in &incoming[node] {
            let from = graph.edge(eid).from;
            if node_alive[from] && !reach[from] {
                reach[from] = true;
                queue.push_back(from);
            }
        }
    }
    reach
}

/// Decides satisfiability of `formula` in pure temporal logic (all atoms uninterpreted).
pub fn satisfiable_pure(formula: &Ltl) -> bool {
    let graph = TableauGraph::build(formula);
    let pruned = prune(&graph, &crate::theory::PropositionalTheory::new());
    pruned.node_alive(graph.initial())
}

/// [`satisfiable_pure`] under a [`ResourceBudget`], with construction and
/// pruning fanned across a worker pool; the answer (including
/// structural-cap `Err`s) is identical at every worker count.
pub fn satisfiable_pure_budgeted(
    formula: &Ltl,
    budget: &ResourceBudget,
    parallelism: Parallelism,
) -> Result<bool, Exhaustion> {
    let graph = TableauGraph::try_build_budgeted(formula, budget, parallelism)?;
    let pruned =
        prune_budgeted(&graph, &crate::theory::PropositionalTheory::new(), parallelism, budget)?;
    Ok(pruned.node_alive(graph.initial()))
}

/// Decides validity of `formula` in pure temporal logic.
pub fn valid_pure(formula: &Ltl) -> bool {
    !satisfiable_pure(&formula.clone().not())
}

/// [`valid_pure`] under a [`ResourceBudget`], fanned across a worker pool;
/// the answer (including structural-cap `Err`s) is identical at every worker
/// count.
pub fn valid_pure_budgeted(
    formula: &Ltl,
    budget: &ResourceBudget,
    parallelism: Parallelism,
) -> Result<bool, Exhaustion> {
    satisfiable_pure_budgeted(&formula.clone().not(), budget, parallelism).map(|sat| !sat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::{TlState, TlTrace};
    use crate::theory::PropositionalTheory;

    fn p() -> Ltl {
        Ltl::prop("P")
    }
    fn q() -> Ltl {
        Ltl::prop("Q")
    }

    #[test]
    fn tautologies_are_valid() {
        assert!(valid_pure(&p().or(p().not())));
        assert!(valid_pure(&Ltl::True));
        assert!(!valid_pure(&p()));
    }

    #[test]
    fn contradictions_are_unsatisfiable() {
        assert!(!satisfiable_pure(&p().and(p().not())));
        assert!(satisfiable_pure(&p().and(q().not())));
    }

    #[test]
    fn eventually_always_implies_always_eventually() {
        let f = p().always().eventually().implies(p().eventually().always());
        assert!(valid_pure(&f));
        // The converse is not valid.
        let g = p().eventually().always().implies(p().always().eventually());
        assert!(!valid_pure(&g));
    }

    #[test]
    fn eventually_p_implies_eventually_p_is_valid() {
        assert!(valid_pure(&p().eventually().implies(p().eventually())));
    }

    #[test]
    fn always_p_and_not_p_unsat() {
        assert!(!satisfiable_pure(&p().always().and(p().not().eventually())));
        assert!(satisfiable_pure(&p().always()));
    }

    #[test]
    fn eventuality_forces_fulfilment() {
        // ◇P ∧ □¬P is unsatisfiable; the eventuality check must detect it.
        let f = p().eventually().and(p().not().always());
        assert!(!satisfiable_pure(&f));
    }

    #[test]
    fn weak_until_without_eventuality_is_satisfiable_by_invariance() {
        // U(P, Q) ∧ □¬Q is satisfiable (P can hold forever).
        let f = p().until(q()).and(q().not().always());
        assert!(satisfiable_pure(&f));
        // But additionally requiring ◇¬P makes it unsatisfiable.
        let g = p().until(q()).and(q().not().always()).and(p().not().eventually());
        assert!(!satisfiable_pure(&g));
    }

    #[test]
    fn negated_weak_until_requires_eventual_not_p() {
        // ¬U(P, Q) ∧ □P is unsatisfiable (¬U implies ◇¬P).
        let f = p().until(q()).not().and(p().always());
        assert!(!satisfiable_pure(&f));
        // ¬U(P, Q) alone is satisfiable.
        assert!(satisfiable_pure(&p().until(q()).not()));
    }

    #[test]
    fn until_unrolling_is_valid() {
        // U(p, q)  ≡  q ∨ (p ∧ ◦U(p, q))
        let u = p().until(q());
        let unrolled = q().or(p().and(u.clone().next()));
        assert!(valid_pure(&u.clone().iff(unrolled)));
    }

    #[test]
    fn budgeted_construction_names_the_tripped_cap() {
        let formula = p().always().not();
        // Generous budget: construction succeeds and matches the unbounded graph.
        let graph = TableauGraph::try_build_budgeted(
            &formula,
            &ResourceBudget::default(),
            Parallelism::Off,
        )
        .expect("well within the default caps");
        assert_eq!(graph.node_count(), TableauGraph::build(&formula).node_count());
        // A 1-node budget trips on Nodes, a 0-edge budget on Edges.
        let no_nodes = ResourceBudget::unbounded().with_max_nodes(0);
        assert_eq!(
            TableauGraph::try_build_budgeted(&formula, &no_nodes, Parallelism::Off).err(),
            Some(Exhaustion::Nodes)
        );
        let no_edges = ResourceBudget::unbounded().with_max_edges(0);
        assert_eq!(
            TableauGraph::try_build_budgeted(&formula, &no_edges, Parallelism::Off).err(),
            Some(Exhaustion::Edges)
        );
        // A pre-cancelled token interrupts before the first level.
        let token = crate::pool::CancelToken::new();
        token.cancel();
        let cancelled = ResourceBudget::unbounded().with_cancel(token);
        assert_eq!(
            valid_pure_budgeted(&formula, &cancelled, Parallelism::Off).err(),
            Some(Exhaustion::Cancelled)
        );
        // The budgeted validity entry settles a theorem under the default caps.
        assert_eq!(
            valid_pure_budgeted(&p().or(p().not()), &ResourceBudget::default(), Parallelism::Off),
            Ok(true)
        );
    }

    #[test]
    fn graph_counts_are_positive() {
        let graph = TableauGraph::build(&p().always().not());
        assert!(graph.node_count() >= 1);
        assert!(graph.edge_count() >= 1);
        let pruned = prune(&graph, &PropositionalTheory::new());
        assert!(pruned.iterations >= 1);
    }

    /// Cross-validate the tableau against the concrete semantics on random formulas.
    #[test]
    fn tableau_agrees_with_semantics_on_small_formulas() {
        // Enumerate all traces of length 3 with a loop over props {P, Q} and
        // compare "satisfiable" with "has a model among these traces".
        // (Only one direction can be checked exhaustively: a model among the
        //  enumerated traces implies satisfiability.)
        let formulas = vec![
            p().always(),
            p().eventually().and(q().eventually()),
            p().until(q()),
            p().until(q()).not(),
            p().always().eventually(),
            p().implies(q().next()).always(),
        ];
        for f in formulas {
            let mut found_model = false;
            for bits in 0..64u32 {
                let states: Vec<TlState> = (0..3)
                    .map(|i| {
                        TlState::new()
                            .with_prop("P", bits & (1 << (2 * i)) != 0)
                            .with_prop("Q", bits & (1 << (2 * i + 1)) != 0)
                    })
                    .collect();
                for loop_start in 0..3 {
                    let trace = TlTrace::lasso(states.clone(), loop_start);
                    if trace.eval(&f) {
                        found_model = true;
                    }
                }
            }
            if found_model {
                assert!(satisfiable_pure(&f), "semantic model exists but tableau says unsat: {f}");
            }
        }
    }
}
