//! Positive disjunctive normal forms over edge atoms.
//!
//! Algorithm B manipulates *conditions*: monotone Boolean combinations of the
//! atoms "□¬prop(e)" for edges `e` of the tableau graph.  A monotone Boolean
//! function has a unique minimal DNF (its prime implicants), so representing
//! conditions as antichains of implicant sets gives a canonical form that makes
//! the fixpoint convergence test a simple structural equality.
//!
//! Canonicity also carries the concurrency story: because `∧`/`∨` results do
//! not depend on evaluation or association order, the Appendix B §5.3
//! fixpoint can batch whole sweeps of condition products across the
//! [`crate::pool`] workers and still produce the sequential answer.  The
//! flip side is cost — conjunction expands a product of implicant sets
//! before absorption, and on the nested weak-until translations of interval
//! formulas (the measured `[ => Q ] []P` family) that product grows
//! combinatorially over thousands of edge atoms.  [`Dnf::all_bounded`] and
//! the shared [`DnfBudget`] cell exist for exactly that case: every product
//! in a batch draws on one atomic budget, the first to exceed it trips the
//! cell, and the whole computation cuts over to an honest "unknown" instead
//! of stalling.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

use crate::pool::{Exhaustion, ResourceBudget};

/// A shared, atomic implicant budget for a (possibly parallel) batch of DNF
/// computations.
///
/// One cell is created per [`crate::algorithm_b`] condition computation and
/// shared by every equation evaluated on every worker: the first computation
/// to exceed the budget [`DnfBudget::trip`]s the cell, and every other
/// in-flight [`Dnf::all_bounded`] aborts at its next fold step.  Because a
/// trip means the whole computation's answer is already `None`, the early
/// aborts never change an answer — they only stop workers from burning CPU on
/// a batch whose result is doomed — so budgeted answers are identical at
/// every worker count.
///
/// A cell built from a [`ResourceBudget`] ([`DnfBudget::from_budget`]) also
/// carries the budget's wall-clock deadline and cancellation token:
/// [`Dnf::all_bounded`] polls them on entry and trips the cell with
/// [`Exhaustion::Deadline`] / [`Exhaustion::Cancelled`], so a runaway
/// fixpoint honours the same cutoffs as every other engine.  The reason the
/// cell tripped is recorded and exposed by [`DnfBudget::exhaustion`].
#[derive(Debug)]
pub struct DnfBudget {
    limit: usize,
    /// The originating budget, consulted only for its timing cutoffs
    /// ([`ResourceBudget::interrupted`] — one implementation of the
    /// cancel-then-deadline priority for every engine); `None` for the
    /// cap-only constructors.
    timing: Option<ResourceBudget>,
    tripped: AtomicBool,
    /// The first recorded trip reason ([`OnceLock`]: later trips lose the
    /// race and are dropped).
    reason: OnceLock<Exhaustion>,
}

impl DnfBudget {
    /// A budget allowing at most `limit` implicants per computed DNF (and the
    /// same cap on every pre-absorption product estimate).
    pub fn new(limit: usize) -> DnfBudget {
        DnfBudget { limit, timing: None, tripped: AtomicBool::new(false), reason: OnceLock::new() }
    }

    /// A cell enforcing `budget`'s implicant cap, deadline, and cancellation
    /// token.
    pub fn from_budget(budget: &ResourceBudget) -> DnfBudget {
        DnfBudget {
            limit: budget.max_implicants(),
            timing: Some(budget.clone()),
            tripped: AtomicBool::new(false),
            reason: OnceLock::new(),
        }
    }

    /// No budget: computations run to completion however large they get.
    pub fn unbounded() -> DnfBudget {
        DnfBudget::new(usize::MAX)
    }

    /// The implicant cap.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// `true` when the implicant cap has no effect (the timing cutoffs, if
    /// any, still apply).
    pub fn is_unbounded(&self) -> bool {
        self.limit == usize::MAX
    }

    /// Marks the budget as exhausted by the implicant cap, telling every
    /// sharer to abort.
    pub fn trip(&self) {
        self.trip_with(Exhaustion::Implicants);
    }

    /// Marks the budget as exhausted for `reason`; the first recorded reason
    /// wins.
    pub fn trip_with(&self, reason: Exhaustion) {
        let _ = self.reason.set(reason);
        self.tripped.store(true, Ordering::Release);
    }

    /// `true` once any sharer exceeded the budget.
    pub fn tripped(&self) -> bool {
        self.tripped.load(Ordering::Acquire)
    }

    /// Why the cell tripped, if it has.
    pub fn exhaustion(&self) -> Option<Exhaustion> {
        self.reason.get().copied()
    }

    /// Polls the timing cutoffs, tripping the cell if one fired; returns
    /// `true` when the cell is (now) tripped.
    fn poll_interrupts(&self) -> bool {
        if self.tripped() {
            return true;
        }
        if let Some(cut) = self.timing.as_ref().and_then(ResourceBudget::interrupted) {
            self.trip_with(cut);
            return true;
        }
        false
    }
}

/// A monotone condition in minimal disjunctive normal form.
///
/// An implicant is a set of edge identifiers, read as the conjunction of the
/// corresponding "□¬prop(e)" atoms; the condition is the disjunction of its
/// implicants.  The empty implicant is `true`; the empty set of implicants is
/// `false`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Dnf {
    implicants: BTreeSet<BTreeSet<usize>>,
}

impl Dnf {
    /// The condition `false`.
    pub fn bottom() -> Dnf {
        Dnf { implicants: BTreeSet::new() }
    }

    /// The condition `true`.
    pub fn top() -> Dnf {
        let mut implicants = BTreeSet::new();
        implicants.insert(BTreeSet::new());
        Dnf { implicants }
    }

    /// The condition consisting of the single atom `id`.
    pub fn atom(id: usize) -> Dnf {
        let mut implicant = BTreeSet::new();
        implicant.insert(id);
        let mut implicants = BTreeSet::new();
        implicants.insert(implicant);
        Dnf { implicants }
    }

    /// `true` if the condition is identically false.
    pub fn is_bottom(&self) -> bool {
        self.implicants.is_empty()
    }

    /// `true` if the condition is identically true.
    pub fn is_top(&self) -> bool {
        self.implicants.contains(&BTreeSet::new())
    }

    /// The implicants of the condition.
    pub fn implicants(&self) -> impl Iterator<Item = &BTreeSet<usize>> {
        self.implicants.iter()
    }

    /// The number of implicants.
    pub fn implicant_count(&self) -> usize {
        self.implicants.len()
    }

    /// Removes implicants that are supersets of other implicants (absorption).
    fn absorb(mut implicants: BTreeSet<BTreeSet<usize>>) -> Dnf {
        let list: Vec<BTreeSet<usize>> = implicants.iter().cloned().collect();
        implicants.retain(|imp| !list.iter().any(|other| other != imp && other.is_subset(imp)));
        Dnf { implicants }
    }

    /// Disjunction of two conditions.
    pub fn or(&self, other: &Dnf) -> Dnf {
        if self.is_top() || other.is_top() {
            return Dnf::top();
        }
        let mut implicants = self.implicants.clone();
        implicants.extend(other.implicants.iter().cloned());
        Dnf::absorb(implicants)
    }

    /// Conjunction of two conditions.
    pub fn and(&self, other: &Dnf) -> Dnf {
        if self.is_bottom() || other.is_bottom() {
            return Dnf::bottom();
        }
        let mut implicants = BTreeSet::new();
        for a in &self.implicants {
            for b in &other.implicants {
                let mut joined = a.clone();
                joined.extend(b.iter().copied());
                implicants.insert(joined);
            }
        }
        Dnf::absorb(implicants)
    }

    /// Disjunction of an iterator of conditions.
    pub fn any<I: IntoIterator<Item = Dnf>>(items: I) -> Dnf {
        items.into_iter().fold(Dnf::bottom(), |acc, d| acc.or(&d))
    }

    /// Conjunction of an iterator of conditions.
    pub fn all<I: IntoIterator<Item = Dnf>>(items: I) -> Dnf {
        items.into_iter().fold(Dnf::top(), |acc, d| acc.and(&d))
    }

    /// Conjunction of DNF terms under a shared budget: `None` when the
    /// pre-absorption product estimate `Π max(1, |termᵢ|)` exceeds
    /// [`DnfBudget::limit`], or when another sharer of `budget` has already
    /// tripped it.
    ///
    /// The estimate is conservative (absorption can collapse a huge product
    /// to a small DNF), but a pessimistic cut is the honest trade: the
    /// budgeted caller reports "unknown" instead of risking an exponential
    /// stall inside a single conjunction.  The estimate also bounds the
    /// result — every intermediate and final implicant count is at most the
    /// pre-absorption product, so an accepted estimate caps the whole
    /// computation's cost and size; no post-hoc result check is needed.
    /// Because the estimate is a function of the term multiset alone, the
    /// `Some`/`None` answer does not depend on evaluation or association
    /// order; this is what lets a parallel fixpoint sweep batch these
    /// products across workers and still answer exactly like the sequential
    /// sweep.
    pub fn all_bounded(terms: Vec<Dnf>, budget: &DnfBudget) -> Option<Dnf> {
        if budget.poll_interrupts() {
            // Another sharer already blew the budget (or the deadline or
            // cancel token fired): the batch's answer is `None` regardless of
            // this product, so don't bother computing it.
            return None;
        }
        if !budget.is_unbounded() {
            let estimate = terms.iter().try_fold(1usize, |acc, term| {
                acc.checked_mul(term.implicant_count().max(1)).filter(|&est| est <= budget.limit())
            });
            if estimate.is_none() {
                budget.trip();
                return None;
            }
        }
        let mut acc = Dnf::top();
        for term in &terms {
            if budget.tripped() {
                return None;
            }
            acc = acc.and(term);
        }
        debug_assert!(
            budget.is_unbounded() || acc.implicant_count() <= budget.limit(),
            "a canonical product can never exceed its accepted pre-absorption estimate"
        );
        Some(acc)
    }

    /// Evaluates the condition under an assignment of atoms to Booleans.
    pub fn eval(&self, assignment: &dyn Fn(usize) -> bool) -> bool {
        self.implicants.iter().any(|imp| imp.iter().all(|&id| assignment(id)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_behave() {
        assert!(Dnf::bottom().is_bottom());
        assert!(Dnf::top().is_top());
        assert!(!Dnf::atom(1).is_bottom());
        assert!(!Dnf::atom(1).is_top());
    }

    #[test]
    fn lattice_laws() {
        let a = Dnf::atom(1);
        let b = Dnf::atom(2);
        assert_eq!(a.or(&Dnf::bottom()), a);
        assert_eq!(a.and(&Dnf::top()), a);
        assert_eq!(a.and(&Dnf::bottom()), Dnf::bottom());
        assert_eq!(a.or(&Dnf::top()), Dnf::top());
        assert_eq!(a.or(&b), b.or(&a));
        assert_eq!(a.and(&b), b.and(&a));
    }

    #[test]
    fn absorption_keeps_minimal_implicants() {
        // a ∨ (a ∧ b) = a
        let a = Dnf::atom(1);
        let ab = Dnf::atom(1).and(&Dnf::atom(2));
        assert_eq!(a.or(&ab), a);
        // (a ∨ b) ∧ a = a
        let aorb = Dnf::atom(1).or(&Dnf::atom(2));
        assert_eq!(aorb.and(&a), a);
    }

    #[test]
    fn distribution() {
        // (a ∨ b) ∧ c = (a∧c) ∨ (b∧c)
        let lhs = Dnf::atom(1).or(&Dnf::atom(2)).and(&Dnf::atom(3));
        let rhs = Dnf::atom(1).and(&Dnf::atom(3)).or(&Dnf::atom(2).and(&Dnf::atom(3)));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn eval_matches_structure() {
        let cond = Dnf::atom(1).and(&Dnf::atom(2)).or(&Dnf::atom(3));
        assert!(cond.eval(&|id| id == 3));
        assert!(cond.eval(&|id| id == 1 || id == 2));
        assert!(!cond.eval(&|id| id == 1));
        assert!(Dnf::top().eval(&|_| false));
        assert!(!Dnf::bottom().eval(&|_| true));
    }

    #[test]
    fn any_and_all_fold_correctly() {
        let items = vec![Dnf::atom(1), Dnf::atom(2)];
        assert_eq!(Dnf::any(items.clone()), Dnf::atom(1).or(&Dnf::atom(2)));
        assert_eq!(Dnf::all(items), Dnf::atom(1).and(&Dnf::atom(2)));
        assert_eq!(Dnf::any(Vec::new()), Dnf::bottom());
        assert_eq!(Dnf::all(Vec::new()), Dnf::top());
    }

    #[test]
    fn empty_conditions_under_a_budget() {
        // The empty conjunction is ⊤ even under the tightest budget (⊤ has
        // one — empty — implicant, within any limit ≥ 1).
        let budget = DnfBudget::new(1);
        assert_eq!(Dnf::all_bounded(Vec::new(), &budget), Some(Dnf::top()));
        assert!(!budget.tripped());
        // A conjunction with a ⊥ term collapses to ⊥ (zero implicants), which
        // also fits every budget; the max(1, ·) estimate must not zero out
        // the product.
        let with_bottom = vec![Dnf::atom(1), Dnf::bottom(), Dnf::atom(2)];
        assert_eq!(Dnf::all_bounded(with_bottom, &budget), Some(Dnf::bottom()));
        assert!(!budget.tripped());
    }

    #[test]
    fn absorption_inside_a_bounded_product() {
        // (a ∨ b) ∧ (a ∨ c) expands to a ∨ ac ∨ ab ∨ bc and absorbs to
        // a ∨ bc; the canonical result must match the unbudgeted fold and
        // fit a budget its pre-absorption expansion merely touches.
        let a_or_ab = Dnf::atom(1).or(&Dnf::atom(1).and(&Dnf::atom(2)));
        assert_eq!(a_or_ab, Dnf::atom(1), "absorption keeps the minimal implicant");
        let terms = vec![Dnf::atom(1).or(&Dnf::atom(2)), Dnf::atom(1).or(&Dnf::atom(3))];
        let unbudgeted = Dnf::all(terms.clone());
        let budget = DnfBudget::new(4);
        assert_eq!(Dnf::all_bounded(terms, &budget), Some(unbudgeted));
        assert!(!budget.tripped());
    }

    #[test]
    fn budget_exhaustion_boundary() {
        // (a ∨ b) ∧ (c ∨ d): estimate 4, result 4 implicants.
        let terms = || vec![Dnf::atom(1).or(&Dnf::atom(2)), Dnf::atom(3).or(&Dnf::atom(4))];
        // Budget exactly at the boundary: allowed, cell untouched.
        let exact = DnfBudget::new(4);
        let result = Dnf::all_bounded(terms(), &exact).expect("estimate == limit must pass");
        assert_eq!(result.implicant_count(), 4);
        assert!(!exact.tripped());
        // One below: the pre-absorption estimate trips before any product is
        // expanded, and the cell records it for every sharer.
        let tight = DnfBudget::new(3);
        assert_eq!(Dnf::all_bounded(terms(), &tight), None);
        assert!(tight.tripped());
        // A tripped cell rejects even trivially small follow-up work.
        assert_eq!(Dnf::all_bounded(vec![Dnf::atom(1)], &tight), None);
        // The unbounded budget never trips.
        let unbounded = DnfBudget::unbounded();
        assert!(unbounded.is_unbounded());
        assert_eq!(Dnf::all_bounded(terms(), &unbounded), Some(result));
        assert!(!unbounded.tripped());
    }

    #[test]
    fn budgets_record_why_they_tripped() {
        use crate::pool::{CancelToken, Exhaustion, ResourceBudget};
        // Implicant-cap trip records Implicants.
        let tight = DnfBudget::new(1);
        let wide = vec![Dnf::atom(1).or(&Dnf::atom(2)), Dnf::atom(3).or(&Dnf::atom(4))];
        assert_eq!(Dnf::all_bounded(wide.clone(), &tight), None);
        assert_eq!(tight.exhaustion(), Some(Exhaustion::Implicants));
        // The first recorded reason wins.
        tight.trip_with(Exhaustion::Deadline);
        assert_eq!(tight.exhaustion(), Some(Exhaustion::Implicants));
        // A cancelled token trips the cell before any product is expanded.
        let token = CancelToken::new();
        token.cancel();
        let cancelled =
            DnfBudget::from_budget(&ResourceBudget::unbounded().with_cancel(token.clone()));
        assert!(cancelled.is_unbounded());
        assert_eq!(Dnf::all_bounded(vec![Dnf::atom(1)], &cancelled), None);
        assert_eq!(cancelled.exhaustion(), Some(Exhaustion::Cancelled));
        // An expired deadline does the same.
        let expired = DnfBudget::from_budget(
            &ResourceBudget::unbounded().with_timeout(std::time::Duration::ZERO),
        );
        assert_eq!(Dnf::all_bounded(vec![Dnf::atom(1)], &expired), None);
        assert_eq!(expired.exhaustion(), Some(Exhaustion::Deadline));
        // An untripped cell reports nothing.
        assert_eq!(DnfBudget::unbounded().exhaustion(), None);
    }

    #[test]
    fn canonical_inputs_keep_estimates_tight() {
        // Terms are canonical *before* the product: `a ∨ ab` absorbs to `a`
        // at construction, so its implicant count — and hence the product
        // estimate — is 1, not 2, and the conjunction fits the tightest
        // budget.  (The estimate also bounds the result: a canonical product
        // can never exceed its accepted pre-absorption estimate, which is
        // why `all_bounded` needs no post-hoc result-size check.)
        let terms = vec![Dnf::atom(1).or(&Dnf::atom(1).and(&Dnf::atom(2)))];
        let budget = DnfBudget::new(1);
        assert_eq!(Dnf::all_bounded(terms, &budget), Some(Dnf::atom(1)));
        assert!(!budget.tripped());
    }
}
