//! Positive disjunctive normal forms over edge atoms.
//!
//! Algorithm B manipulates *conditions*: monotone Boolean combinations of the
//! atoms "□¬prop(e)" for edges `e` of the tableau graph.  A monotone Boolean
//! function has a unique minimal DNF (its prime implicants), so representing
//! conditions as antichains of implicant sets gives a canonical form that makes
//! the fixpoint convergence test a simple structural equality.

use std::collections::BTreeSet;

/// A monotone condition in minimal disjunctive normal form.
///
/// An implicant is a set of edge identifiers, read as the conjunction of the
/// corresponding "□¬prop(e)" atoms; the condition is the disjunction of its
/// implicants.  The empty implicant is `true`; the empty set of implicants is
/// `false`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Dnf {
    implicants: BTreeSet<BTreeSet<usize>>,
}

impl Dnf {
    /// The condition `false`.
    pub fn bottom() -> Dnf {
        Dnf { implicants: BTreeSet::new() }
    }

    /// The condition `true`.
    pub fn top() -> Dnf {
        let mut implicants = BTreeSet::new();
        implicants.insert(BTreeSet::new());
        Dnf { implicants }
    }

    /// The condition consisting of the single atom `id`.
    pub fn atom(id: usize) -> Dnf {
        let mut implicant = BTreeSet::new();
        implicant.insert(id);
        let mut implicants = BTreeSet::new();
        implicants.insert(implicant);
        Dnf { implicants }
    }

    /// `true` if the condition is identically false.
    pub fn is_bottom(&self) -> bool {
        self.implicants.is_empty()
    }

    /// `true` if the condition is identically true.
    pub fn is_top(&self) -> bool {
        self.implicants.contains(&BTreeSet::new())
    }

    /// The implicants of the condition.
    pub fn implicants(&self) -> impl Iterator<Item = &BTreeSet<usize>> {
        self.implicants.iter()
    }

    /// The number of implicants.
    pub fn implicant_count(&self) -> usize {
        self.implicants.len()
    }

    /// Removes implicants that are supersets of other implicants (absorption).
    fn absorb(mut implicants: BTreeSet<BTreeSet<usize>>) -> Dnf {
        let list: Vec<BTreeSet<usize>> = implicants.iter().cloned().collect();
        implicants.retain(|imp| !list.iter().any(|other| other != imp && other.is_subset(imp)));
        Dnf { implicants }
    }

    /// Disjunction of two conditions.
    pub fn or(&self, other: &Dnf) -> Dnf {
        if self.is_top() || other.is_top() {
            return Dnf::top();
        }
        let mut implicants = self.implicants.clone();
        implicants.extend(other.implicants.iter().cloned());
        Dnf::absorb(implicants)
    }

    /// Conjunction of two conditions.
    pub fn and(&self, other: &Dnf) -> Dnf {
        if self.is_bottom() || other.is_bottom() {
            return Dnf::bottom();
        }
        let mut implicants = BTreeSet::new();
        for a in &self.implicants {
            for b in &other.implicants {
                let mut joined = a.clone();
                joined.extend(b.iter().copied());
                implicants.insert(joined);
            }
        }
        Dnf::absorb(implicants)
    }

    /// Disjunction of an iterator of conditions.
    pub fn any<I: IntoIterator<Item = Dnf>>(items: I) -> Dnf {
        items.into_iter().fold(Dnf::bottom(), |acc, d| acc.or(&d))
    }

    /// Conjunction of an iterator of conditions.
    pub fn all<I: IntoIterator<Item = Dnf>>(items: I) -> Dnf {
        items.into_iter().fold(Dnf::top(), |acc, d| acc.and(&d))
    }

    /// Evaluates the condition under an assignment of atoms to Booleans.
    pub fn eval(&self, assignment: &dyn Fn(usize) -> bool) -> bool {
        self.implicants.iter().any(|imp| imp.iter().all(|&id| assignment(id)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_behave() {
        assert!(Dnf::bottom().is_bottom());
        assert!(Dnf::top().is_top());
        assert!(!Dnf::atom(1).is_bottom());
        assert!(!Dnf::atom(1).is_top());
    }

    #[test]
    fn lattice_laws() {
        let a = Dnf::atom(1);
        let b = Dnf::atom(2);
        assert_eq!(a.or(&Dnf::bottom()), a);
        assert_eq!(a.and(&Dnf::top()), a);
        assert_eq!(a.and(&Dnf::bottom()), Dnf::bottom());
        assert_eq!(a.or(&Dnf::top()), Dnf::top());
        assert_eq!(a.or(&b), b.or(&a));
        assert_eq!(a.and(&b), b.and(&a));
    }

    #[test]
    fn absorption_keeps_minimal_implicants() {
        // a ∨ (a ∧ b) = a
        let a = Dnf::atom(1);
        let ab = Dnf::atom(1).and(&Dnf::atom(2));
        assert_eq!(a.or(&ab), a);
        // (a ∨ b) ∧ a = a
        let aorb = Dnf::atom(1).or(&Dnf::atom(2));
        assert_eq!(aorb.and(&a), a);
    }

    #[test]
    fn distribution() {
        // (a ∨ b) ∧ c = (a∧c) ∨ (b∧c)
        let lhs = Dnf::atom(1).or(&Dnf::atom(2)).and(&Dnf::atom(3));
        let rhs = Dnf::atom(1).and(&Dnf::atom(3)).or(&Dnf::atom(2).and(&Dnf::atom(3)));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn eval_matches_structure() {
        let cond = Dnf::atom(1).and(&Dnf::atom(2)).or(&Dnf::atom(3));
        assert!(cond.eval(&|id| id == 3));
        assert!(cond.eval(&|id| id == 1 || id == 2));
        assert!(!cond.eval(&|id| id == 1));
        assert!(Dnf::top().eval(&|_| false));
        assert!(!Dnf::bottom().eval(&|_| true));
    }

    #[test]
    fn any_and_all_fold_correctly() {
        let items = vec![Dnf::atom(1), Dnf::atom(2)];
        assert_eq!(Dnf::any(items.clone()), Dnf::atom(1).or(&Dnf::atom(2)));
        assert_eq!(Dnf::all(items), Dnf::atom(1).and(&Dnf::atom(2)));
        assert_eq!(Dnf::any(Vec::new()), Dnf::bottom());
        assert_eq!(Dnf::all(Vec::new()), Dnf::top());
    }
}
