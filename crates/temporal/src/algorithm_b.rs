//! Algorithm B of Appendix B §5: computing the condition formula `C`.
//!
//! Given a formula `A`, the algorithm builds `Graph(¬A)` and computes, by a
//! double fixpoint iteration, a *condition* under which the initial node would
//! be deleted.  The condition is a monotone Boolean combination of atoms
//! "□¬prop(e)" for edges `e` of the graph; written in disjunctive normal form
//! it is the maximal formula `∨ᵢ □Cᵢ` such that `TL ⊨ (∨ᵢ □Cᵢ) ⊃ A`
//! (Theorem 1).  The specialized theory is consulted only at the very end:
//!
//! * when every constraint variable is a *state* variable, `TL(T) ⊨ A` iff
//!   `T ⊨ Cᵢ` for some `i`, which (because each `Cᵢ` is a conjunction of
//!   negated edge labels) reduces to every edge label of some implicant being
//!   `T`-unsatisfiable;
//! * when every constraint variable is *extralogical*, `TL(T) ⊨ A` iff
//!   `T ⊨ ∨ᵢ Cᵢ` (Corollary 2), decided here by refuting the negation
//!   selection by selection;
//! * for a mixture the first check is still sufficient for validity, and the
//!   procedure answers [`Decision::Unknown`] when it fails (the report notes
//!   the general mixed case requires the state variables of each `Cᵢ` to be
//!   quantified separately).
//!
//! As the report describes, the fixpoint iteration is accelerated by iterating
//! over the strongly connected components of the graph in dependency order.
//!
//! # The condition store, the evaluated fixpoint, and budgets
//!
//! The §5.3 double fixpoint is the procedure's hot phase — PR 2 measured the
//! `[ => Q ] []P` blowup *here*, not in tableau construction (the graph is
//! only 97 nodes / 3362 edges and builds in ~55 ms, but the unbudgeted
//! fixpoint over explicit `BTreeSet` DNFs does not terminate in hours).  Two
//! mechanisms now split that cost by what the caller actually needs:
//!
//! * **Decisions** ([`AlgorithmB::decide`] / [`AlgorithmB::decide_budgeted`])
//!   never materialize a condition in the state-variable, mixed, and
//!   propositional modes: they run the same fixpoint over plain Booleans
//!   ([`evaluate_condition_at`]) — evaluation at an atom assignment is a
//!   lattice homomorphism onto the Booleans, so the projected fixpoint
//!   returns exactly the condition's truth value in O(graph) time.  This is
//!   what finally refutes the prefix-invariance family in milliseconds.
//! * **The explicit condition artifact**
//!   ([`AlgorithmB::condition_budgeted`], [`condition_of_graph_budgeted`])
//!   runs on the interned [`crate::dnf::store::ConditionStore`]: `delete`/
//!   `fail` values are hash-consed [`DnfId`]s, products are memoized, and
//!   the shared atomic [`crate::dnf::DnfBudget`] cell charges *distinct*
//!   implicants, so heavily-absorbing computations fit budgets the old
//!   pre-absorption estimate tripped on.  The iteration itself is
//!   *semi-naive*: a reverse-dependency graph built once per tableau drives a
//!   per-component worklist, and each round re-evaluates only the equations
//!   whose inputs changed since their last evaluation — an equation whose
//!   inputs did not change would have replayed entirely from the memo tables,
//!   so skipping it leaves ids, budget charges, and trip reasons bit-identical
//!   to a full sweep.  Each round's ready set is first attempted against a
//!   frozen store view batched across the [`crate::pool`] workers, then the
//!   remainder is computed sequentially in task order — answers,
//!   `Err`-under-budget included, are identical at every worker count.  The
//!   PR 5 full-sweep discipline survives as
//!   [`condition_of_graph_full_sweep_stats`] (the differential anchor for the
//!   worklist engine), and the PR 3 `BTreeSet` fixpoint as
//!   [`condition_of_graph_baseline`], the oracle for tests and the
//!   `condition_fixpoint` bench.
//!
//! [`AlgorithmB::with_parallelism`] routes the whole procedure (tableau,
//! fixpoint sweeps, end-of-run selection check) through the pool.

use std::collections::{BTreeMap, BTreeSet};

use crate::dnf::store::{ConditionStore, DnfId, FrozenStore, StoreStats};
use crate::dnf::{Dnf, DnfBudget};
use crate::pool::{Exhaustion, Parallelism, ResourceBudget, WorkerPool};
use crate::syntax::{Ltl, VarSpec};
use crate::tableau::{EdgeId, EventualityIndex, NodeId, SweepPlan, TableauGraph};
use crate::theory::Theory;

/// The answer of the combined decision procedure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// The formula is valid in `TL(T)`.
    Valid,
    /// The formula is not valid in `TL(T)` (exact in the supported modes).
    NotValid,
    /// The procedure could not establish validity (mixed variable modes, or a
    /// case-split explosion was cut off); the formula may or may not be valid.
    Unknown,
}

/// The condition formula computed by Algorithm B, together with the graph it refers to.
#[derive(Debug)]
pub struct Condition {
    graph: TableauGraph,
    delete_init: Dnf,
    outer_rounds: usize,
    store_stats: StoreStats,
}

impl Condition {
    /// The tableau graph of `¬A` the condition refers to.
    pub fn graph(&self) -> &TableauGraph {
        &self.graph
    }

    /// The condition `delete(init)` as a monotone DNF over edge identifiers.
    pub fn dnf(&self) -> &Dnf {
        &self.delete_init
    }

    /// Number of outer rounds of the double fixpoint iteration.
    pub fn outer_rounds(&self) -> usize {
        self.outer_rounds
    }

    /// Interning/memoization counters of the [`ConditionStore`] the fixpoint
    /// ran on, plus the worklist counters (`rounds`, `equations_evaluated`,
    /// `equations_skipped`).  The [`condition_of_graph_baseline`] path
    /// bypasses the store — its interning counters stay zero — but still
    /// reports its rounds and evaluations.
    pub fn store_stats(&self) -> StoreStats {
        self.store_stats
    }

    /// `true` if the condition establishes validity in pure temporal logic
    /// (the condition contains the empty implicant, i.e. it is identically true).
    pub fn valid_in_pure_tl(&self) -> bool {
        self.delete_init.is_top()
    }

    /// The disjuncts `Cᵢ` of the condition, each given as the list of edge
    /// labels `prop(e)` whose henceforth-negation is conjoined in `Cᵢ`.
    pub fn disjuncts(&self) -> Vec<Vec<&[crate::syntax::Literal]>> {
        self.delete_init
            .implicants()
            .map(|imp| imp.iter().map(|&e| self.graph.edge(e).literals.as_slice()).collect())
            .collect()
    }
}

/// Algorithm B: condition computation plus the end-of-run theory check.
pub struct AlgorithmB<'t> {
    theory: &'t dyn Theory,
    vars: VarSpec,
    parallelism: Parallelism,
    /// Upper bound on the number of selections explored in the
    /// extralogical-variable check before giving up with [`Decision::Unknown`].
    pub selection_limit: usize,
}

impl<'t> AlgorithmB<'t> {
    /// Creates the procedure over the given theory and variable classification.
    pub fn new(theory: &'t dyn Theory, vars: VarSpec) -> AlgorithmB<'t> {
        AlgorithmB { theory, vars, parallelism: Parallelism::Off, selection_limit: 200_000 }
    }

    /// Fans every phase of the procedure — tableau construction, the condition
    /// fixpoint sweeps, and the end-of-run selection check — across a worker
    /// pool.  Answers (including `Unknown`-under-budget) are identical at
    /// every worker count.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> AlgorithmB<'t> {
        self.parallelism = parallelism;
        self
    }

    /// Computes the condition formula for `formula` (i.e. for `Graph(¬formula)`).
    pub fn condition(&self, formula: &Ltl) -> Condition {
        self.condition_budgeted(formula, &ResourceBudget::unbounded())
            .expect("an unbounded budget cannot be exceeded")
    }

    /// [`AlgorithmB::condition`] under a [`ResourceBudget`]: the `Err` names
    /// the first resource that ran out in either the tableau construction or
    /// the condition fixpoint.  The DNF fixpoint is the dangerous phase — on
    /// the nested weak-until translations of interval formulas it explodes
    /// combinatorially even when the graph itself stays small (e.g.
    /// `¬to_ltl([ => Q ] []P)` builds a 97-node / 3362-edge graph in
    /// milliseconds whose fixpoint does not terminate in hours).
    pub fn condition_budgeted(
        &self,
        formula: &Ltl,
        budget: &ResourceBudget,
    ) -> Result<Condition, Exhaustion> {
        let graph =
            TableauGraph::try_build_budgeted(&formula.clone().not(), budget, self.parallelism)?;
        condition_of_graph_budgeted(graph, budget, self.parallelism)
    }

    /// [`AlgorithmB::condition_budgeted`] that also reports the
    /// [`ConditionStore`] counters of the attempt — on *both* outcomes.  A
    /// trip still did real interning work (on the measured blowup family,
    /// thousands of distinct implicants before the cap fires), and the
    /// session reports surface exactly those counters.
    pub fn condition_budgeted_with_stats(
        &self,
        formula: &Ltl,
        budget: &ResourceBudget,
    ) -> (Result<Condition, Exhaustion>, StoreStats) {
        match TableauGraph::try_build_budgeted(&formula.clone().not(), budget, self.parallelism) {
            Ok(graph) => condition_of_graph_budgeted_stats(graph, budget, self.parallelism),
            Err(cut) => (Err(cut), StoreStats::default()),
        }
    }

    /// Decides whether `formula` is valid in `TL(T)`.
    pub fn decide(&self, formula: &Ltl) -> Decision {
        let budget = ResourceBudget::unbounded().with_max_enumeration(self.selection_limit);
        self.decide_budgeted(formula, &budget).unwrap_or(Decision::Unknown)
    }

    /// [`AlgorithmB::decide`] under a [`ResourceBudget`]: `Err` (naming the
    /// exhausted resource) instead of hanging when the construction, the
    /// fixpoint, or the end-of-run selection enumeration blows past the
    /// budget.  Callers that only need the three-valued answer can flatten
    /// `Err(_)` to [`Decision::Unknown`].
    ///
    /// # The evaluated fixpoint
    ///
    /// In the state-variable, mixed, and purely propositional modes the
    /// decision never needs the condition *formula* — only the condition
    /// *evaluated* at up to two atom assignments: `delete(init)` contains an
    /// implicant of `T`-unsatisfiable edges iff the monotone function it
    /// denotes is true at the assignment "□¬prop(e) ↦ prop(e)
    /// T-unsatisfiable", and it is `⊥` iff it is false at the all-true
    /// assignment.  Because evaluation at a point is a lattice homomorphism
    /// from canonical monotone DNFs onto the Booleans — it commutes with `∧`,
    /// `∨`, and hence with every step of the §5.3 iteration, whose extreme
    /// fixpoints are preserved — these truth values can be computed by
    /// running the *same* double fixpoint over plain Booleans
    /// ([`evaluate_condition_at`]): O(graph) work, no DNF ever materialized,
    /// no implicant budget consumed.
    ///
    /// This is what tames the nested weak-until family for good: the
    /// `[ => Q ] []P` condition's minimal DNF is astronomically wide (the
    /// interned store pushed the explicit frontier from ~10³ to ~10⁵ distinct
    /// implicants and it still grows), but its *decision* falls out of the
    /// Boolean projection in milliseconds.  The explicit condition — the
    /// artifact the specialized-theory checks and [`Condition::disjuncts`]
    /// need — remains available through [`AlgorithmB::condition_budgeted`]
    /// under the distinct-implicant budget, and the purely-extralogical mode
    /// (whose selection check enumerates the implicants) still computes it.
    pub fn decide_budgeted(
        &self,
        formula: &Ltl,
        budget: &ResourceBudget,
    ) -> Result<Decision, Exhaustion> {
        let graph =
            TableauGraph::try_build_budgeted(&formula.clone().not(), budget, self.parallelism)?;
        self.decide_from_graph_budgeted(formula, &graph, budget)
    }

    /// [`AlgorithmB::decide_budgeted`] over an already-built `Graph(¬formula)`
    /// — for callers (the `Session` Decide backend) that also compute the
    /// explicit condition artifact from the same graph and must not pay the
    /// tableau construction twice.
    pub fn decide_from_graph_budgeted(
        &self,
        formula: &Ltl,
        graph: &TableauGraph,
        budget: &ResourceBudget,
    ) -> Result<Decision, Exhaustion> {
        self.decide_from_graph_budgeted_stats(formula, graph, budget).0
    }

    /// [`AlgorithmB::decide_from_graph_budgeted`] that also reports the
    /// fixpoint counters of the attempt — on *both* outcomes.  In the
    /// evaluated (Boolean) modes the interning counters stay zero but the
    /// `rounds`/`equations_evaluated`/`equations_skipped` trio measures the
    /// worklist engine's work; in the purely extralogical mode the counters
    /// are those of the explicit condition computation.
    pub fn decide_from_graph_budgeted_stats(
        &self,
        formula: &Ltl,
        graph: &TableauGraph,
        budget: &ResourceBudget,
    ) -> (Result<Decision, Exhaustion>, StoreStats) {
        let vars = formula.variables();
        let has_state = vars.iter().any(|v| !self.vars.is_extralogical(v));
        let has_extra = vars.iter().any(|v| self.vars.is_extralogical(v));
        if has_extra && !has_state {
            // Purely extralogical: the selection check needs the actual
            // implicants, so the explicit (budgeted) condition is computed.
            let (result, stats) =
                condition_of_graph_budgeted_stats(graph.clone(), budget, self.parallelism);
            return match result {
                Ok(condition) => {
                    (self.decide_from_condition_budgeted(formula, &condition, budget), stats)
                }
                Err(cut) => (Err(cut), stats),
            };
        }
        let mut stats = StoreStats::default();
        if let Some(cut) = budget.interrupted() {
            return (Err(cut), stats);
        }
        let mut unsat = Vec::with_capacity(graph.edges().len());
        for (count, edge) in graph.edges().iter().enumerate() {
            // Theory checks can be the slow part on big graphs: honour the
            // deadline/cancellation cutoffs mid-scan like every other engine.
            if count % crate::pool::INTERRUPT_POLL_PERIOD == 0 {
                if let Some(cut) = budget.interrupted() {
                    return (Err(cut), stats);
                }
            }
            unsat.push(!self.theory.satisfiable(&edge.literals).is_sat());
        }
        let (at_unsat, eval_stats) = evaluate_condition_at_budgeted_stats(graph, &unsat, budget);
        stats.merge(eval_stats);
        match at_unsat {
            Err(cut) => return (Err(cut), stats),
            // Some implicant of delete(init) has only T-unsatisfiable edges
            // (the empty implicant of a ⊤ condition included).
            Ok(true) => return (Ok(Decision::Valid), stats),
            Ok(false) => {}
        }
        if has_state && has_extra {
            // Mixed mode: the pointwise check is only sufficient.  delete(init)
            // evaluating false even at the all-true assignment means it is ⊥ —
            // not valid in any mode; anything else stays out of reach.
            let all_true = vec![true; graph.edges().len()];
            let (at_top, eval_stats) =
                evaluate_condition_at_budgeted_stats(graph, &all_true, budget);
            stats.merge(eval_stats);
            return match at_top {
                Err(cut) => (Err(cut), stats),
                Ok(false) => (Ok(Decision::NotValid), stats),
                Ok(true) => (Ok(Decision::Unknown), stats),
            };
        }
        // Pure state-variable (or purely propositional) mode: the pointwise
        // check is exact.
        (Ok(Decision::NotValid), stats)
    }

    /// Decides validity given a previously computed condition (allows callers to
    /// time the construction and iteration phases separately).
    pub fn decide_from_condition(&self, formula: &Ltl, condition: &Condition) -> Decision {
        let budget = ResourceBudget::unbounded().with_max_enumeration(self.selection_limit);
        self.decide_from_condition_budgeted(formula, condition, &budget)
            .unwrap_or(Decision::Unknown)
    }

    /// [`AlgorithmB::decide_from_condition`] under a [`ResourceBudget`]: the
    /// extralogical-variable selection check enumerates at most
    /// `budget.max_enumeration()` selections (`Err(Enumeration)` beyond
    /// that), and the budget's deadline/cancellation cutoffs are polled
    /// before the sweep starts.
    pub fn decide_from_condition_budgeted(
        &self,
        formula: &Ltl,
        condition: &Condition,
        budget: &ResourceBudget,
    ) -> Result<Decision, Exhaustion> {
        if condition.valid_in_pure_tl() {
            return Ok(Decision::Valid);
        }
        if condition.dnf().is_bottom() {
            return Ok(Decision::NotValid);
        }
        // Sufficient check, exact when all variables are state variables:
        // some implicant has every edge label T-unsatisfiable.
        let graph = condition.graph();
        let implicant_valid = |implicant: &BTreeSet<EdgeId>| {
            implicant.iter().all(|&e| !self.theory.satisfiable(&graph.edge(e).literals).is_sat())
        };
        if condition.dnf().implicants().any(implicant_valid) {
            return Ok(Decision::Valid);
        }

        let vars = formula.variables();
        let has_state = vars.iter().any(|v| !self.vars.is_extralogical(v));
        let has_extra = vars.iter().any(|v| self.vars.is_extralogical(v));
        if !has_extra {
            // Pure state-variable (or purely propositional) mode: the check above is exact.
            return Ok(Decision::NotValid);
        }
        if has_state {
            // Mixed mode: we only implement the sufficient check.  Not a
            // budget matter — the procedure simply has no exact answer here.
            return Ok(Decision::Unknown);
        }
        // Extralogical-only mode: T ⊨ ∨ᵢ Cᵢ  iff  every selection of one edge per
        // implicant yields a T-unsatisfiable conjunction of edge labels.
        if let Some(interrupt) = budget.interrupted() {
            return Err(interrupt);
        }
        let implicants: Vec<Vec<EdgeId>> =
            condition.dnf().implicants().map(|imp| imp.iter().copied().collect()).collect();
        let cap = budget.max_enumeration();
        let total: usize = implicants
            .iter()
            .map(Vec::len)
            .try_fold(1usize, |acc, n| acc.checked_mul(n).filter(|&v| v <= cap))
            .unwrap_or(usize::MAX);
        if total == usize::MAX {
            return Err(Exhaustion::Enumeration);
        }
        // The selections are a mixed-radix enumeration (first implicant
        // varying fastest); shard it across the pool.  The answer — "does any
        // selection have a T-model?" — does not depend on *which* satisfiable
        // selection is found, and the sharded search's lowest-index-wins
        // early exit keeps even the work pattern deterministic.  Each worker
        // re-polls the budget's timing cutoffs every few hundred selections,
        // so a deadline or cancellation cuts a long sweep mid-flight (a
        // timing-dependent cut, like everywhere else those knobs apply).
        enum Hit {
            Sat,
            Cut(Exhaustion),
        }
        let pool = WorkerPool::new(self.parallelism);
        let states = vec![0usize; pool.workers()];
        let (hit, _) = pool.search(total, 0, states, |visited: &mut usize, index| {
            *visited += 1;
            if visited.is_multiple_of(crate::pool::INTERRUPT_POLL_PERIOD) {
                if let Some(cut) = budget.interrupted() {
                    return Some(Hit::Cut(cut));
                }
            }
            let mut rest = index;
            let mut literals = Vec::new();
            for imp in &implicants {
                let pick = rest % imp.len();
                rest /= imp.len();
                literals.extend(graph.edge(imp[pick]).literals.iter().cloned());
            }
            // A satisfiable selection is a T-model of the negation.
            self.theory.satisfiable(&literals).is_sat().then_some(Hit::Sat)
        });
        match hit {
            Some((_, Hit::Sat)) => Ok(Decision::NotValid),
            Some((_, Hit::Cut(cut))) => Err(cut),
            None => Ok(Decision::Valid),
        }
    }
}

/// Computes the condition `delete(init)` of a tableau graph by the double
/// fixpoint iteration of Appendix B §5.3, accelerated per strongly connected
/// component as described in §6.
pub fn condition_of_graph(graph: TableauGraph) -> Condition {
    condition_of_graph_budgeted(graph, &ResourceBudget::unbounded(), Parallelism::Off)
        .expect("an unbounded budget cannot be exceeded")
}

/// [`condition_of_graph`] under an implicant budget: `None` as soon as any
/// intermediate DNF (or the conservative size estimate of one equation's
/// conjunction) exceeds `max_implicants`.  Shim over
/// [`condition_of_graph_budgeted`].
pub fn condition_of_graph_bounded(graph: TableauGraph, max_implicants: usize) -> Option<Condition> {
    condition_of_graph_with(graph, max_implicants, Parallelism::Off)
}

/// [`condition_of_graph_bounded`] with the fixpoint rounds sharded across a
/// worker pool.
///
/// The iteration is organized as *worklist rounds*: each round evaluates the
/// equations of the current component whose inputs changed since their last
/// evaluation — the ready set — against a frozen snapshot of the
/// `delete`/`fail` maps, and the results are committed together before the
/// next round.  Because each evaluated equation depends only on the snapshot
/// — not on other equations of the same round — the ready set batches freely
/// across workers, and each round's outcome is a pure function of the
/// snapshot.  Both fixpoints still converge to the same place as a
/// dependency-ordered (Gauss–Seidel) iteration would: `fail` descends
/// monotonically from `⊤` to its greatest fixpoint and `delete` ascends from
/// `⊥` to its least, and on a finite lattice chaotic iteration reaches the
/// unique extreme fixpoint in either discipline.
///
/// The `max_implicants` budget is enforced globally through one shared
/// [`DnfBudget`] cell: the first equation (on any worker) whose product
/// estimate exceeds the budget trips the cell, every other
/// in-flight product aborts at its next step, and the whole computation
/// answers `None`.  Whether an equation trips is a function of the round
/// snapshot alone, so budgeted `None`/`Some` answers — and hence
/// `Unknown`-vs-decided verdicts upstream — are identical at every worker
/// count.
pub fn condition_of_graph_with(
    graph: TableauGraph,
    max_implicants: usize,
    parallelism: Parallelism,
) -> Option<Condition> {
    condition_of_graph_budgeted(
        graph,
        &ResourceBudget::unbounded().with_max_implicants(max_implicants),
        parallelism,
    )
    .ok()
}

/// [`condition_of_graph_with`] under a full [`ResourceBudget`]: enforces the
/// distinct-implicant cap *and* the budget's deadline/cancellation cutoffs
/// (polled at every round and inside large products through the shared
/// [`DnfBudget`] cell), and names the exhausted resource on `Err`.
///
/// # The semi-naive interned fixpoint
///
/// Since the condition-store rewrite this function runs on a
/// [`ConditionStore`]: `delete`/`fail` values are `Copy` [`DnfId`]s, the
/// equations' `∨`/`∧` are memoized store operations, and the convergence test
/// per equation is an id comparison — which also makes *change detection*
/// O(1), the hook the PR 7 worklist engine hangs on.  A reverse-dependency
/// graph (`preds[m]` = the nodes whose equations read the values at `m`) is
/// derived once per tableau — it lives in the graph's cached sweep plan,
/// computed at the end of [`TableauGraph::try_build_budgeted`] alongside the
/// SCC order and the per-edge fulfillment tables; each inner fixpoint seeds
/// its worklist with every equation of the component and thereafter
/// re-evaluates only equations some input of which changed last round.
/// Each round runs in two phases:
///
/// 1. **Frozen phase** (batched across the pool via a sparse
///    [`WorkerPool::map_indexed`]): every ready equation is first attempted
///    against a read-only [`FrozenStore`] view, where each operation either
///    resolves by an identity shortcut or a memo hit, or defers.
/// 2. **Sequential phase**: the deferred equations are computed in task
///    order against the mutable store, interning new implicants (each
///    distinct one charged once to the shared budget cell) and growing the
///    memo tables.
///
/// A frozen evaluation succeeds exactly when the mutable evaluation would
/// have mutated nothing and yields the same id, so the store contents — ids,
/// memo tables, and the budget charge — evolve identically at every worker
/// count: answers, including `Err`-under-budget, are bit-identical from
/// `Off` to any `Fixed(n)`.  Skipping is just as conservative: an equation
/// whose inputs did not change would have replayed entirely from the memo
/// tables without mutating the store or charging the budget, so the worklist
/// run's ids, charges, and trip reasons are bit-identical to the full-sweep
/// discipline too (only `memo_hits` counts the replays a full sweep would
/// have performed).  At a single worker the frozen phase is elided — it is
/// accounting-transparent (a settleable equation replays identically from
/// memo; a deferred one records nothing), so the ready set is evaluated
/// directly against the mutable store in task order, same ids and charges,
/// minus the double memo walk.  [`condition_of_graph_full_sweep_stats`]
/// keeps the full-sweep discipline callable as the differential anchor.
pub fn condition_of_graph_budgeted(
    graph: TableauGraph,
    resource_budget: &ResourceBudget,
    parallelism: Parallelism,
) -> Result<Condition, Exhaustion> {
    condition_of_graph_budgeted_stats(graph, resource_budget, parallelism).0
}

/// [`condition_of_graph_budgeted`] that also hands back the
/// [`ConditionStore`] counters on *both* outcomes — a budget trip still did
/// real interning/memoization work, and the session reports surface it.  On
/// `Ok` the same counters are also available via [`Condition::store_stats`].
pub fn condition_of_graph_budgeted_stats(
    graph: TableauGraph,
    resource_budget: &ResourceBudget,
    parallelism: Parallelism,
) -> (Result<Condition, Exhaustion>, StoreStats) {
    condition_of_graph_engine(graph, resource_budget, parallelism, true)
}

/// The PR 5 full-sweep (Jacobi) discipline of the interned fixpoint, kept
/// callable as the differential anchor for the worklist engine: every round
/// re-evaluates *every* equation of the component until none changes.
///
/// Ids, budget charges, and trip reasons are bit-identical to
/// [`condition_of_graph_budgeted_stats`] — the worklist engine only skips
/// equations that would have replayed from the memo tables — so the
/// differential tests compare conditions, implicant charges, and exhaustion
/// reasons across the two, and the `condition_fixpoint` bench measures the
/// speedup of skipping (recorded in `BENCH_PR7.json`).  Only the
/// `memo_hits`/`rounds`/`equations_*` counters legitimately differ.
pub fn condition_of_graph_full_sweep_stats(
    graph: TableauGraph,
    resource_budget: &ResourceBudget,
    parallelism: Parallelism,
) -> (Result<Condition, Exhaustion>, StoreStats) {
    condition_of_graph_engine(graph, resource_budget, parallelism, false)
}

/// The shared engine behind [`condition_of_graph_budgeted_stats`] (`delta ==
/// true`, semi-naive worklist) and [`condition_of_graph_full_sweep_stats`]
/// (`delta == false`, PR 5 Jacobi sweeps).  Both disciplines share the
/// interned store, the atom leaves, and the §5.3 two-phase outer round; they
/// differ in which equations a round evaluates — dependents of changed
/// values vs. everything again — and in the constant-factor machinery that
/// choice allows (fulfillment tables, hoisted worklist buffers, the
/// single-worker direct-evaluation sweep).
fn condition_of_graph_engine(
    graph: TableauGraph,
    resource_budget: &ResourceBudget,
    parallelism: Parallelism,
    delta: bool,
) -> (Result<Condition, Exhaustion>, StoreStats) {
    let n = graph.node_count();
    let ne = graph.eventualities().len();
    let budget = DnfBudget::from_budget(resource_budget);

    let mut store = ConditionStore::new();
    // The equations' leaves: one □¬prop(e) atom per edge, interned once and
    // shared by every equation that mentions the edge.
    let mut atoms: Vec<DnfId> = Vec::with_capacity(graph.edges().len());
    for eid in 0..graph.edges().len() {
        match store.atom(eid, &budget) {
            Some(id) => atoms.push(id),
            None => {
                let cut = budget.exhaustion().unwrap_or(Exhaustion::Implicants);
                return (Err(cut), store.stats());
            }
        }
    }

    let mut delete: Vec<DnfId> = vec![ConditionStore::BOTTOM; n];
    // fail(ev, node) at slot `ev_index * n + node`.
    let mut fail: Vec<DnfId> = vec![ConditionStore::TOP; n * ne];
    let mut outer_rounds = 0;

    let run = {
        // The worklist engine hoists the per-edge eventuality membership
        // tests and edge targets out of the hot loop into tables computed
        // once per tableau; the full-sweep anchor keeps PR 5's
        // per-evaluation `BTreeSet<Ltl>` lookups so its measured cost stays
        // that of the path it preserves.  The lookups return the same
        // booleans either way, so the DNF op sequence — and with it every
        // interned id and budget charge — is unaffected.
        let tables = if delta { Some(FulfillTables::new(&graph)) } else { None };
        let fixpoint = ConditionFixpoint {
            graph: &graph,
            eventualities: graph.eventualities(),
            atoms,
            tables,
            pool: WorkerPool::new(parallelism),
            n,
        };
        if delta {
            fixpoint.run_worklist(
                graph.sweep_plan(),
                &mut store,
                &budget,
                &mut delete,
                &mut fail,
                &mut outer_rounds,
            )
        } else {
            // The anchor re-derives the component structure per call, as
            // PR 5 did — its measured cost is that of the preserved path.
            let sccs = strongly_connected_components(&graph);
            fixpoint.run_full_sweep(
                &sccs,
                &mut store,
                &budget,
                &mut delete,
                &mut fail,
                &mut outer_rounds,
            )
        }
    };
    if let Err(cut) = run {
        return (Err(cut), store.stats());
    }

    let delete_init = store.extract(delete[graph.initial()]);
    let stats = store.stats();
    (Ok(Condition { graph, delete_init, outer_rounds, store_stats: stats }), stats)
}

/// Evaluates the condition `delete(init)` of a tableau graph as a plain
/// Boolean at the atom assignment `atom_true` (indexed by edge id), by
/// running the Appendix B §5.3 double fixpoint over the two-point lattice
/// instead of over condition DNFs.
///
/// Soundness is the canonicity argument of the [`crate::dnf`] module turned
/// around: evaluation at a fixed assignment is a lattice homomorphism from
/// canonical monotone DNFs onto the Booleans, so it commutes with every
/// `∧`/`∨` of the iteration and with its extreme fixpoints — the Boolean
/// returned here is exactly `delete(init)` of
/// [`condition_of_graph_budgeted`] evaluated at `atom_true`, computed in
/// O(graph · rounds) time and O(graph) space however wide the explicit
/// condition would be.  [`AlgorithmB::decide_budgeted`] uses it to decide
/// the state-variable and propositional modes without materializing a single
/// implicant.
pub fn evaluate_condition_at(graph: &TableauGraph, atom_true: &[bool]) -> bool {
    evaluate_condition_at_budgeted(graph, atom_true, &ResourceBudget::unbounded())
        .expect("an unbounded budget cannot be exceeded")
}

/// [`evaluate_condition_at`] honouring a [`ResourceBudget`]'s wall-clock
/// deadline and cancellation token, polled once per fixpoint round (the
/// structural caps cannot apply — the Boolean projection allocates nothing
/// to cap).  `Err` names the timing cutoff that fired.
pub fn evaluate_condition_at_budgeted(
    graph: &TableauGraph,
    atom_true: &[bool],
    budget: &ResourceBudget,
) -> Result<bool, Exhaustion> {
    evaluate_condition_at_budgeted_stats(graph, atom_true, budget).0
}

/// [`evaluate_condition_at_budgeted`] that also reports the worklist
/// counters of the run — `rounds`, `equations_evaluated`,
/// `equations_skipped`; the interning counters stay zero, nothing is ever
/// interned here.  The Boolean projection uses the same semi-naive
/// discipline as the DNF-valued engine (seed everything at phase start,
/// re-evaluate only dependents of changes), but evaluates its ready set in
/// place: over the two-point lattice each value moves monotonically within a
/// phase, so chaotic in-place iteration reaches the same extreme fixpoint as
/// the snapshot rounds and skipping never changes the answer.  The run
/// reads the graph's cached sweep plan (SCC order, reverse-dependency CSR,
/// flat fulfillment tables) instead of re-deriving any of it, so repeated
/// evaluations over one tableau — the shape of an evaluated decision —
/// amortize everything but the fixpoint itself; it directly speeds the
/// `[ => Q ] []P` family decision (~2x the PR 5 sweep per call,
/// `BENCH_PR7.json`).
pub fn evaluate_condition_at_budgeted_stats(
    graph: &TableauGraph,
    atom_true: &[bool],
    budget: &ResourceBudget,
) -> (Result<bool, Exhaustion>, StoreStats) {
    let n = graph.node_count();
    let ne = graph.eventualities().len();
    let plan = graph.sweep_plan();
    let tables = FulfillTables::new(graph);
    let mut stats = StoreStats::default();
    let mut delete = vec![false; n];
    let mut fail = vec![true; n * ne];
    let mut pos: Vec<usize> = vec![usize::MAX; n];
    // fail(component[ci], ei) at task index `ci * ne + ei` (node-major, like
    // the DNF engine); delete(component[ci]) at task index `ci`.  The
    // worklist buffers are sized once for the largest component — per-trip
    // allocations inside the SCC loop dominate the runtime on tableaux with
    // thousands of trivial components.
    let max_cn = plan.sccs.iter().map(Vec::len).max().unwrap_or(0);
    let mut fail_dirty = vec![false; max_cn * ne];
    let mut delete_dirty = vec![false; max_cn];
    let mut ready: Vec<usize> = Vec::with_capacity(max_cn * ne);
    let mut queue: Vec<usize> = Vec::with_capacity(max_cn * ne);
    for component in &plan.sccs {
        let cn = component.len();
        for (i, &node) in component.iter().enumerate() {
            pos[node] = i;
        }
        loop {
            for &node in component {
                for ei in 0..ne {
                    fail[ei * n + node] = true;
                }
            }
            // fail to its greatest fixpoint within the component: the reset
            // touched everything, so every task seeds the worklist.
            queue.clear();
            queue.extend(0..cn * ne);
            fail_dirty[..cn * ne].iter_mut().for_each(|d| *d = true);
            while !queue.is_empty() {
                if let Some(cut) = budget.interrupted() {
                    return (Err(cut), stats);
                }
                std::mem::swap(&mut ready, &mut queue);
                queue.clear();
                ready.sort_unstable();
                stats.rounds += 1;
                stats.equations_evaluated += ready.len() as u64;
                stats.equations_skipped += (cn * ne - ready.len()) as u64;
                for &t in &ready {
                    fail_dirty[t] = false;
                }
                for &t in &ready {
                    let node = component[t / ne];
                    let ei = t % ne;
                    let new = graph.outgoing(node).iter().all(|&eid| {
                        let to = tables.plan.targets[eid] as usize;
                        atom_true[eid]
                            || delete[to]
                            || (tables.plan.unfulfilled[eid * ne + ei] && fail[ei * n + to])
                    });
                    if new != fail[ei * n + node] {
                        fail[ei * n + node] = new;
                        for &p in plan.preds_of(node) {
                            let pp = pos[p as usize];
                            if pp != usize::MAX {
                                let pt = pp * ne + ei;
                                if !fail_dirty[pt] {
                                    fail_dirty[pt] = true;
                                    queue.push(pt);
                                }
                            }
                        }
                    }
                }
            }
            // delete to its least fixpoint within the component; the fail
            // phase moved the inputs of every delete equation, so all seed.
            let mut rerun_outer = false;
            queue.clear();
            queue.extend(0..cn);
            delete_dirty[..cn].iter_mut().for_each(|d| *d = true);
            while !queue.is_empty() {
                if let Some(cut) = budget.interrupted() {
                    return (Err(cut), stats);
                }
                std::mem::swap(&mut ready, &mut queue);
                queue.clear();
                ready.sort_unstable();
                stats.rounds += 1;
                stats.equations_evaluated += ready.len() as u64;
                stats.equations_skipped += (cn - ready.len()) as u64;
                for &t in &ready {
                    delete_dirty[t] = false;
                }
                for &t in &ready {
                    let node = component[t];
                    let new = graph.outgoing(node).iter().all(|&eid| {
                        let to = tables.plan.targets[eid] as usize;
                        atom_true[eid]
                            || delete[to]
                            || tables.mentions(eid).iter().any(|&ei| fail[ei as usize * n + to])
                    });
                    if new != delete[node] {
                        delete[node] = new;
                        for &p in plan.preds_of(node) {
                            let pp = pos[p as usize];
                            if pp != usize::MAX {
                                // Some in-component equation reads this
                                // value, so the fail gfp it was computed
                                // against is stale: rerun the outer round.
                                // A change nothing in the component reads
                                // (every predecessor lies in a later
                                // component of the reverse-topological
                                // order) cannot move the fixpoint here.
                                rerun_outer = true;
                                if !delete_dirty[pp] {
                                    delete_dirty[pp] = true;
                                    queue.push(pp);
                                }
                            }
                        }
                    }
                }
            }
            if !rerun_outer {
                break;
            }
        }
        for &node in component {
            pos[node] = usize::MAX;
        }
    }
    (Ok(delete[graph.initial()]), stats)
}

/// The PR 5 Boolean projection, preserved verbatim as the differential
/// anchor for [`evaluate_condition_at_budgeted_stats`]: full Jacobi sweeps —
/// every component equation re-evaluated every round until an unchanged
/// round — with the per-edge `BTreeSet<Ltl>` fulfillment lookups of the
/// original hot loop.  The worklist engine must compute the identical
/// Boolean at every assignment (pinned by the differential tests); the
/// `condition_fixpoint` bench measures the delta engine's speedup against
/// this path.  Reports `rounds`/`equations_evaluated` like the engines
/// (`equations_skipped` zero by construction; nothing is ever interned).
pub fn evaluate_condition_at_full_sweep_stats(
    graph: &TableauGraph,
    atom_true: &[bool],
    budget: &ResourceBudget,
) -> (Result<bool, Exhaustion>, StoreStats) {
    let n = graph.node_count();
    let eventualities = graph.eventualities();
    let ne = eventualities.len();
    let sccs = strongly_connected_components(graph);
    let mut stats = StoreStats::default();
    let mut delete = vec![false; n];
    let mut fail = vec![true; n * ne];
    for component in &sccs {
        loop {
            for &node in component {
                for ei in 0..ne {
                    fail[ei * n + node] = true;
                }
            }
            // fail to its greatest fixpoint within the component (in-place
            // chaotic iteration reaches the same extreme fixpoint as the
            // Jacobi sweeps of the DNF-valued run).
            loop {
                if let Some(cut) = budget.interrupted() {
                    return (Err(cut), stats);
                }
                stats.rounds += 1;
                stats.equations_evaluated += (component.len() * ne) as u64;
                let mut changed = false;
                for &node in component {
                    for (ei, ev) in eventualities.iter().enumerate() {
                        let new = graph.outgoing(node).iter().all(|&eid| {
                            let edge = graph.edge(eid);
                            atom_true[eid]
                                || delete[edge.to]
                                || (!edge.fulfilled.contains(ev) && fail[ei * n + edge.to])
                        });
                        if new != fail[ei * n + node] {
                            fail[ei * n + node] = new;
                            changed = true;
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
            // delete to its least fixpoint within the component.
            let mut delete_changed_any = false;
            loop {
                if let Some(cut) = budget.interrupted() {
                    return (Err(cut), stats);
                }
                stats.rounds += 1;
                stats.equations_evaluated += component.len() as u64;
                let mut changed = false;
                for &node in component {
                    let new = graph.outgoing(node).iter().all(|&eid| {
                        let edge = graph.edge(eid);
                        atom_true[eid]
                            || delete[edge.to]
                            || eventualities.iter().enumerate().any(|(ei, ev)| {
                                edge.eventualities.contains(ev) && fail[ei * n + edge.to]
                            })
                    });
                    if new != delete[node] {
                        delete[node] = new;
                        changed = true;
                        delete_changed_any = true;
                    }
                }
                if !changed {
                    break;
                }
            }
            if !delete_changed_any {
                break;
            }
        }
    }
    (Ok(delete[graph.initial()]), stats)
}

/// Which equation of the §5.3 system a sweep task evaluates.
#[derive(Clone, Copy, Debug)]
enum EqKind {
    /// `fail(A, N)` for the eventuality with this index.
    Fail(usize),
    /// `delete(N)`.
    Delete,
}

/// Per-tableau fulfillment tables: the `A ∈ ev(e)` / `A fulfilled by e`
/// membership tests of the §5.3 equations as flat arrays — borrowed from the
/// graph's cached [`EventualityIndex`] and [`SweepPlan`] — so the hot loop
/// indexes integers instead of running `BTreeSet<Ltl>` lookups (deep
/// structural comparisons) on every edge of every evaluation.  The booleans
/// are definitionally those of the set lookups, so using the tables cannot
/// change an evaluation's DNF op sequence — only its constant factor.
struct FulfillTables<'g> {
    /// The graph's eventuality index (per-edge mention lists).
    index: &'g EventualityIndex,
    /// The graph's fixpoint plan (`targets`, dense `unfulfilled`).
    plan: &'g SweepPlan,
}

impl<'g> FulfillTables<'g> {
    fn new(graph: &'g TableauGraph) -> FulfillTables<'g> {
        FulfillTables { index: graph.eventuality_index(), plan: graph.sweep_plan() }
    }

    /// Eventuality indices mentioned by edge `eid`, ascending.
    fn mentions(&self, eid: usize) -> &[u32] {
        self.index.mentions(eid)
    }
}

/// The per-graph context of the interned condition fixpoint: everything the
/// sweep equations read besides the evolving `delete`/`fail` vectors.
struct ConditionFixpoint<'g> {
    graph: &'g TableauGraph,
    eventualities: &'g [Ltl],
    /// Interned `□¬prop(e)` atom conditions, indexed by edge id.
    atoms: Vec<DnfId>,
    /// `Some` in the worklist engine; `None` in the full-sweep anchor, which
    /// keeps PR 5's per-evaluation set lookups (see
    /// [`condition_of_graph_full_sweep_stats`]).
    tables: Option<FulfillTables<'g>>,
    pool: WorkerPool,
    n: usize,
}

impl ConditionFixpoint<'_> {
    /// The semi-naive worklist discipline driving
    /// [`condition_of_graph_budgeted_stats`]: every phase seeds its full
    /// equation set (a phase boundary touches every equation's inputs), and
    /// afterwards only the dependents of values that actually changed —
    /// looked up in the reverse-dependency CSR — re-enter the ready set,
    /// which each round evaluates in ascending task order so the interning
    /// sequence matches the Jacobi path's.  The outer §5.3 round repeats
    /// only while some `delete` change is read *inside* the component;
    /// a change every reader of which lies in a later component of the
    /// reverse-topological order cannot move this component's fixpoint, so
    /// its verification round (all replays, no interning, no charges) is
    /// skipped.  Worklist buffers are sized once for the largest component;
    /// per-component allocations dominate on tableaux with thousands of
    /// trivial SCCs.
    fn run_worklist(
        &self,
        plan: &SweepPlan,
        store: &mut ConditionStore,
        budget: &DnfBudget,
        delete: &mut [DnfId],
        fail: &mut [DnfId],
        outer_rounds: &mut usize,
    ) -> Result<(), Exhaustion> {
        let sccs = &plan.sccs;
        let n = self.n;
        let ne = self.eventualities.len();
        // Dense position of each node within the component being processed;
        // `usize::MAX` marks nodes outside it (their values are already
        // final, so changes never propagate to them).
        let mut pos: Vec<usize> = vec![usize::MAX; n];
        let max_cn = sccs.iter().map(Vec::len).max().unwrap_or(0);
        let mut fail_tasks: Vec<(NodeId, EqKind)> = Vec::with_capacity(max_cn * ne);
        let mut delete_tasks: Vec<(NodeId, EqKind)> = Vec::with_capacity(max_cn);
        let mut fail_dirty = vec![false; max_cn * ne];
        let mut delete_dirty = vec![false; max_cn];
        let mut ready: Vec<usize> = Vec::with_capacity(max_cn * ne);
        let mut queue: Vec<usize> = Vec::with_capacity(max_cn * ne);
        let mut scratch: Vec<DnfId> = Vec::new();
        for component in sccs {
            let cn = component.len();
            for (i, &node) in component.iter().enumerate() {
                pos[node] = i;
            }
            // The equations of one component: every (node, eventuality) pair
            // for `fail` — task index `pos[node] * ne + ei`, node-major —
            // and every node for `delete` — task index `pos[node]`.
            fail_tasks.clear();
            fail_tasks.extend(
                component.iter().flat_map(|&node| (0..ne).map(move |ei| (node, EqKind::Fail(ei)))),
            );
            delete_tasks.clear();
            delete_tasks.extend(component.iter().map(|&node| (node, EqKind::Delete)));
            loop {
                *outer_rounds += 1;
                // Reset fail to the top element within the component (step
                // 6 / 2); the reset touched everything, so all tasks seed.
                for &node in component {
                    for ei in 0..ne {
                        fail[ei * n + node] = ConditionStore::TOP;
                    }
                }
                queue.clear();
                queue.extend(0..cn * ne);
                fail_dirty[..cn * ne].iter_mut().for_each(|d| *d = true);
                // Iterate fail to its greatest fixpoint within the component.
                while !queue.is_empty() {
                    std::mem::swap(&mut ready, &mut queue);
                    queue.clear();
                    ready.sort_unstable();
                    for &t in &ready {
                        fail_dirty[t] = false;
                    }
                    let updates =
                        self.sweep(store, budget, delete, fail, &fail_tasks, &ready, &mut scratch)?;
                    for (&t, new) in ready.iter().zip(updates) {
                        let (node, kind) = fail_tasks[t];
                        let EqKind::Fail(ei) = kind else { unreachable!("fail task") };
                        if new != fail[ei * n + node] {
                            fail[ei * n + node] = new;
                            for &p in plan.preds_of(node) {
                                let pp = pos[p as usize];
                                if pp != usize::MAX {
                                    let pt = pp * ne + ei;
                                    if !fail_dirty[pt] {
                                        fail_dirty[pt] = true;
                                        queue.push(pt);
                                    }
                                }
                            }
                        }
                    }
                }
                // Iterate delete to its least fixpoint within the component.
                // The fail phase just moved (or at least reset-and-
                // recomputed) the fail values every delete equation reads,
                // so all tasks seed.
                let mut rerun_outer = false;
                queue.clear();
                queue.extend(0..cn);
                delete_dirty[..cn].iter_mut().for_each(|d| *d = true);
                while !queue.is_empty() {
                    std::mem::swap(&mut ready, &mut queue);
                    queue.clear();
                    ready.sort_unstable();
                    for &t in &ready {
                        delete_dirty[t] = false;
                    }
                    let updates = self.sweep(
                        store,
                        budget,
                        delete,
                        fail,
                        &delete_tasks,
                        &ready,
                        &mut scratch,
                    )?;
                    for (&t, new) in ready.iter().zip(updates) {
                        let (node, _) = delete_tasks[t];
                        if new != delete[node] {
                            delete[node] = new;
                            for &p in plan.preds_of(node) {
                                let pp = pos[p as usize];
                                if pp != usize::MAX {
                                    // Some in-component equation reads this
                                    // value, so the fail gfp it was computed
                                    // against is stale: rerun the outer
                                    // round.
                                    rerun_outer = true;
                                    if !delete_dirty[pp] {
                                        delete_dirty[pp] = true;
                                        queue.push(pp);
                                    }
                                }
                            }
                        }
                    }
                }
                if !rerun_outer {
                    break;
                }
            }
            for &node in component {
                pos[node] = usize::MAX;
            }
        }
        Ok(())
    }

    /// The PR 5 discipline driving [`condition_of_graph_full_sweep_stats`]:
    /// Jacobi rounds that re-evaluate every component equation until an
    /// unchanged round, with no worklist bookkeeping — the preserved path
    /// the worklist engine is differentially pinned against and benchmarked
    /// over.
    fn run_full_sweep(
        &self,
        sccs: &[Vec<NodeId>],
        store: &mut ConditionStore,
        budget: &DnfBudget,
        delete: &mut [DnfId],
        fail: &mut [DnfId],
        outer_rounds: &mut usize,
    ) -> Result<(), Exhaustion> {
        let n = self.n;
        let ne = self.eventualities.len();
        for component in sccs {
            let fail_tasks: Vec<(NodeId, EqKind)> = component
                .iter()
                .flat_map(|&node| (0..ne).map(move |ei| (node, EqKind::Fail(ei))))
                .collect();
            let delete_tasks: Vec<(NodeId, EqKind)> =
                component.iter().map(|&node| (node, EqKind::Delete)).collect();
            loop {
                *outer_rounds += 1;
                // Reset fail to the top element within the component.
                for &node in component {
                    for ei in 0..ne {
                        fail[ei * n + node] = ConditionStore::TOP;
                    }
                }
                // Iterate fail to its greatest fixpoint within the component.
                loop {
                    let updates = self.sweep_all(store, budget, delete, fail, &fail_tasks)?;
                    let mut changed = false;
                    for (&(node, kind), new) in fail_tasks.iter().zip(updates) {
                        let EqKind::Fail(ei) = kind else { unreachable!("fail task") };
                        if new != fail[ei * n + node] {
                            fail[ei * n + node] = new;
                            changed = true;
                        }
                    }
                    if !changed {
                        break;
                    }
                }
                // Iterate delete to its least fixpoint within the component.
                let mut delete_changed_any = false;
                loop {
                    let updates = self.sweep_all(store, budget, delete, fail, &delete_tasks)?;
                    let mut changed = false;
                    for (&(node, _), new) in delete_tasks.iter().zip(updates) {
                        if new != delete[node] {
                            delete[node] = new;
                            changed = true;
                            delete_changed_any = true;
                        }
                    }
                    if !changed {
                        break;
                    }
                }
                if !delete_changed_any {
                    break;
                }
            }
        }
        Ok(())
    }

    /// One two-phase round over the `ready` subset of `tasks` (see
    /// [`condition_of_graph_budgeted`]): frozen phase batched across the
    /// pool via the sparse [`WorkerPool::map_indexed`], deferred equations
    /// computed sequentially in task order; results aligned with `ready`, or
    /// the exhaustion that tripped the shared budget.  Records the round's
    /// evaluated/skipped tallies on the store before evaluating (so a
    /// tripped round is still counted in the trip report).
    #[allow(clippy::too_many_arguments)]
    fn sweep(
        &self,
        store: &mut ConditionStore,
        budget: &DnfBudget,
        delete: &[DnfId],
        fail: &[DnfId],
        tasks: &[(NodeId, EqKind)],
        ready: &[usize],
        scratch: &mut Vec<DnfId>,
    ) -> Result<Vec<DnfId>, Exhaustion> {
        if budget.poll_interrupts() {
            return Err(budget.exhaustion().unwrap_or(Exhaustion::Implicants));
        }
        store.record_sweep(ready.len() as u64, (tasks.len() - ready.len()) as u64);
        // A single worker gains nothing from the frozen pre-pass, and the
        // pass is accounting-transparent: a frozen-settleable equation is
        // fully memoized, so its mutable evaluation performs the identical
        // lookups (same memo hits, no interning, no charges), while a
        // deferred equation's frozen attempt records nothing and is re-done
        // mutably anyway.  Evaluating the ready set directly in task order
        // therefore produces bit-identical ids, charges, trips, and counters
        // — pinned across worker counts by the differential tests — while
        // skipping the double memo walk the anchor always pays.
        if self.pool.workers() == 1 {
            let mut results = Vec::with_capacity(ready.len());
            for &t in ready {
                let mut ops = Mutable { store, budget };
                match self.eval_scratch(&mut ops, delete, fail, tasks[t], scratch) {
                    Some(id) => results.push(id),
                    None => return Err(budget.exhaustion().unwrap_or(Exhaustion::Implicants)),
                }
            }
            return Ok(results);
        }
        // Frozen phase: settle whatever is already fully memoized.
        let frozen = store.frozen();
        let settled: Vec<(Option<DnfId>, u64)> = self.pool.map_indexed(ready, |t| {
            let mut ops = Frozen { view: frozen, hits: 0 };
            let result = self.eval(&mut ops, delete, fail, tasks[t]);
            (result, ops.hits)
        });
        // A frozen view cannot bump the store's counters, so credit the memo
        // hits of the *settled* equations here (a deferred equation's lookups
        // are re-done — and re-counted — by its mutable run below).  The
        // settled set and each equation's hit count are pure functions of the
        // frozen store, so the tally is worker-count independent.
        let frozen_hits: u64 =
            settled.iter().filter(|(slot, _)| slot.is_some()).map(|&(_, hits)| hits).sum();
        store.record_frozen_hits(frozen_hits);
        // Sequential phase: compute the rest in task order.
        let mut results = Vec::with_capacity(ready.len());
        for (i, (slot, _)) in settled.into_iter().enumerate() {
            match slot {
                Some(id) => results.push(id),
                None => {
                    let mut ops = Mutable { store, budget };
                    match self.eval_scratch(&mut ops, delete, fail, tasks[ready[i]], scratch) {
                        Some(id) => results.push(id),
                        None => return Err(budget.exhaustion().unwrap_or(Exhaustion::Implicants)),
                    }
                }
            }
        }
        Ok(results)
    }

    /// [`ConditionFixpoint::sweep`] over *every* task — the PR 5 Jacobi
    /// round, kept verbatim for the full-sweep anchor: frozen phase batched
    /// across the pool at any worker count (including one, as PR 5 always
    /// did), deferred equations sequential in task order.
    fn sweep_all(
        &self,
        store: &mut ConditionStore,
        budget: &DnfBudget,
        delete: &[DnfId],
        fail: &[DnfId],
        tasks: &[(NodeId, EqKind)],
    ) -> Result<Vec<DnfId>, Exhaustion> {
        if budget.poll_interrupts() {
            return Err(budget.exhaustion().unwrap_or(Exhaustion::Implicants));
        }
        store.record_sweep(tasks.len() as u64, 0);
        let frozen = store.frozen();
        let settled: Vec<(Option<DnfId>, u64)> = self.pool.map(tasks.len(), |t| {
            let mut ops = Frozen { view: frozen, hits: 0 };
            let result = self.eval(&mut ops, delete, fail, tasks[t]);
            (result, ops.hits)
        });
        let frozen_hits: u64 =
            settled.iter().filter(|(slot, _)| slot.is_some()).map(|&(_, hits)| hits).sum();
        store.record_frozen_hits(frozen_hits);
        let mut results = Vec::with_capacity(tasks.len());
        for (i, (slot, _)) in settled.into_iter().enumerate() {
            match slot {
                Some(id) => results.push(id),
                None => {
                    let mut ops = Mutable { store, budget };
                    match self.eval(&mut ops, delete, fail, tasks[i]) {
                        Some(id) => results.push(id),
                        None => return Err(budget.exhaustion().unwrap_or(Exhaustion::Implicants)),
                    }
                }
            }
        }
        Ok(results)
    }

    /// One equation of the §5.3 system, evaluated through `ops`:
    ///
    /// * delete(N) = ∧ₑ ( □¬prop(e) ∨ delete(fin(e)) ∨ ∨_{A ∈ ev(e)} fail(A, fin(e)) )
    /// * fail(A, N) = ∧ₑ ( □¬prop(e) ∨ delete(fin(e)) ∨ \[A not satisfied by e ∧ fail(A, fin(e))\] )
    ///
    /// `None` means whatever the ops implementation's failure mode is: "not
    /// memoized, defer to the sequential phase" for [`Frozen`], "budget
    /// tripped" for [`Mutable`].
    fn eval<O: DnfOps>(
        &self,
        ops: &mut O,
        delete: &[DnfId],
        fail: &[DnfId],
        task: (NodeId, EqKind),
    ) -> Option<DnfId> {
        let mut terms = Vec::with_capacity(self.graph.outgoing(task.0).len());
        self.eval_scratch(ops, delete, fail, task, &mut terms)
    }

    /// [`ConditionFixpoint::eval`] writing its per-edge terms into a caller
    /// scratch buffer, so sequential sweeps reuse one allocation across the
    /// whole run.  The result is a pure function of the inputs either way.
    fn eval_scratch<O: DnfOps>(
        &self,
        ops: &mut O,
        delete: &[DnfId],
        fail: &[DnfId],
        (node, kind): (NodeId, EqKind),
        terms: &mut Vec<DnfId>,
    ) -> Option<DnfId> {
        let outgoing = self.graph.outgoing(node);
        terms.clear();
        match &self.tables {
            // Worklist engine: flat-table lookups, no `Edge` struct access.
            Some(tables) => {
                let ne = self.eventualities.len();
                for &eid in outgoing {
                    let to = tables.plan.targets[eid] as usize;
                    let mut term = ops.or(self.atoms[eid], delete[to])?;
                    match kind {
                        EqKind::Delete => {
                            for &ei in tables.mentions(eid) {
                                term = ops.or(term, fail[ei as usize * self.n + to])?;
                            }
                        }
                        EqKind::Fail(ei) => {
                            if tables.plan.unfulfilled[eid * ne + ei] {
                                term = ops.or(term, fail[ei * self.n + to])?;
                            }
                        }
                    }
                    terms.push(term);
                }
            }
            // Full-sweep anchor: PR 5's per-evaluation set lookups.
            None => {
                for &eid in outgoing {
                    let edge = self.graph.edge(eid);
                    let mut term = ops.or(self.atoms[eid], delete[edge.to])?;
                    match kind {
                        EqKind::Delete => {
                            for (ei, ev) in self.eventualities.iter().enumerate() {
                                if edge.eventualities.contains(ev) {
                                    term = ops.or(term, fail[ei * self.n + edge.to])?;
                                }
                            }
                        }
                        EqKind::Fail(ei) => {
                            if !edge.fulfilled.contains(&self.eventualities[ei]) {
                                term = ops.or(term, fail[ei * self.n + edge.to])?;
                            }
                        }
                    }
                    terms.push(term);
                }
            }
        }
        ops.all(terms)
    }
}

/// The store operations an equation evaluation needs, abstracted over the
/// frozen (read-only, deferring) and mutable (interning, budgeted) phases so
/// the equation itself is written exactly once.
trait DnfOps {
    /// Disjunction; `None` in the implementation's failure mode.
    fn or(&mut self, a: DnfId, b: DnfId) -> Option<DnfId>;
    /// Conjunction of all `terms`; `None` in the implementation's failure mode.
    fn all(&mut self, terms: &[DnfId]) -> Option<DnfId>;
}

/// Frozen-phase ops: identity shortcuts and memo hits only; `None` defers the
/// equation to the sequential phase.  Memo hits are tallied locally (the
/// view is read-only) and committed by the sweep for settled equations.
struct Frozen<'s> {
    view: FrozenStore<'s>,
    hits: u64,
}

impl DnfOps for Frozen<'_> {
    fn or(&mut self, a: DnfId, b: DnfId) -> Option<DnfId> {
        self.view.or_counting(a, b, &mut self.hits)
    }

    fn all(&mut self, terms: &[DnfId]) -> Option<DnfId> {
        self.view.all_counting(terms, &mut self.hits)
    }
}

/// Sequential-phase ops: full store operations; `None` means the shared
/// budget tripped.
struct Mutable<'s, 'b> {
    store: &'s mut ConditionStore,
    budget: &'b DnfBudget,
}

impl DnfOps for Mutable<'_, '_> {
    fn or(&mut self, a: DnfId, b: DnfId) -> Option<DnfId> {
        if self.budget.tripped() {
            return None;
        }
        Some(self.store.or(a, b))
    }

    fn all(&mut self, terms: &[DnfId]) -> Option<DnfId> {
        self.store.all(terms, self.budget)
    }
}

/// The PR 3 `BTreeSet` condition fixpoint, kept as the differential
/// baseline: same Jacobi sweeps and SCC acceleration, but explicit [`Dnf`]
/// values (re-cloned and re-absorbed at every product) and the
/// pre-absorption estimate cut of [`Dnf::all_bounded_estimated`] instead of
/// the interned store's distinct-implicant accounting.  It stays naive —
/// every sweep re-evaluates every equation — but reports its `rounds` and
/// `equations_evaluated` through [`Condition::store_stats`] (interning
/// counters zero, `equations_skipped` zero by construction) so the
/// differential tests can compare convergence against the worklist engine.
///
/// Tests pin that it computes the same condition as
/// [`condition_of_graph_budgeted`] wherever neither path trips its budget,
/// and the `condition_fixpoint` bench measures the speedup of the interned
/// paths against it.
pub fn condition_of_graph_baseline(
    graph: TableauGraph,
    resource_budget: &ResourceBudget,
    parallelism: Parallelism,
) -> Result<Condition, Exhaustion> {
    let pool = WorkerPool::new(parallelism);
    let budget = DnfBudget::from_budget(resource_budget);
    let n = graph.node_count();
    let eventualities = graph.eventualities();
    let sccs = strongly_connected_components(&graph);

    let mut delete: Vec<Dnf> = vec![Dnf::bottom(); n];
    let mut fail: BTreeMap<(usize, NodeId), Dnf> = BTreeMap::new();
    for (ei, _) in eventualities.iter().enumerate() {
        for node in 0..n {
            fail.insert((ei, node), Dnf::top());
        }
    }
    let mut outer_rounds = 0;
    let mut stats = StoreStats::default();

    for component in &sccs {
        let fail_tasks: Vec<(NodeId, usize)> = component
            .iter()
            .flat_map(|&node| (0..eventualities.len()).map(move |ei| (node, ei)))
            .collect();
        loop {
            outer_rounds += 1;
            for &node in component {
                for (ei, _) in eventualities.iter().enumerate() {
                    fail.insert((ei, node), Dnf::top());
                }
            }
            loop {
                stats.rounds += 1;
                stats.equations_evaluated += fail_tasks.len() as u64;
                let Some(updates) = sweep_equations(fail_tasks.len(), &pool, |i| {
                    let (node, ei) = fail_tasks[i];
                    fail_equation(&graph, node, ei, &eventualities[ei], &delete, &fail, &budget)
                }) else {
                    return Err(budget.exhaustion().unwrap_or(Exhaustion::Implicants));
                };
                let mut changed = false;
                for (&(node, ei), new) in fail_tasks.iter().zip(updates) {
                    if new != fail[&(ei, node)] {
                        fail.insert((ei, node), new);
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
            let mut delete_changed_any = false;
            loop {
                stats.rounds += 1;
                stats.equations_evaluated += component.len() as u64;
                let Some(updates) = sweep_equations(component.len(), &pool, |i| {
                    delete_equation(&graph, component[i], eventualities, &delete, &fail, &budget)
                }) else {
                    return Err(budget.exhaustion().unwrap_or(Exhaustion::Implicants));
                };
                let mut changed = false;
                for (&node, new) in component.iter().zip(updates) {
                    if new != delete[node] {
                        delete[node] = new;
                        changed = true;
                        delete_changed_any = true;
                    }
                }
                if !changed {
                    break;
                }
            }
            if !delete_changed_any {
                break;
            }
        }
    }

    let delete_init = delete[graph.initial()].clone();
    Ok(Condition { graph, delete_init, outer_rounds, store_stats: stats })
}

/// One baseline Jacobi sweep: evaluates `eval(0..count)` — each equation
/// reading only the caller's frozen snapshot — batched across the pool via
/// [`WorkerPool::map`], and returns the results in task order, or `None`
/// when any equation blew the budget.
fn sweep_equations<T, F>(count: usize, pool: &WorkerPool, eval: F) -> Option<Vec<T>>
where
    T: Send,
    F: Fn(usize) -> Option<T> + Sync,
{
    pool.map(count, eval).into_iter().collect()
}

/// delete(N) = ∧ₑ ( □¬prop(e) ∨ delete(fin(e)) ∨ ∨_{A ∈ ev(e)} fail(A, fin(e)) )
fn delete_equation(
    graph: &TableauGraph,
    node: NodeId,
    eventualities: &[Ltl],
    delete: &[Dnf],
    fail: &BTreeMap<(usize, NodeId), Dnf>,
    budget: &DnfBudget,
) -> Option<Dnf> {
    let terms = graph
        .outgoing(node)
        .iter()
        .map(|&eid| {
            let edge = graph.edge(eid);
            let mut term = Dnf::atom(eid).or(&delete[edge.to]);
            for (ei, ev) in eventualities.iter().enumerate() {
                if edge.eventualities.contains(ev) {
                    term = term.or(&fail[&(ei, edge.to)]);
                }
            }
            term
        })
        .collect();
    Dnf::all_bounded_estimated(terms, budget)
}

/// fail(A, N) = ∧ₑ ( □¬prop(e) ∨ delete(fin(e)) ∨ [A not satisfied by e ∧ fail(A, fin(e))] )
fn fail_equation(
    graph: &TableauGraph,
    node: NodeId,
    ev_index: usize,
    ev: &Ltl,
    delete: &[Dnf],
    fail: &BTreeMap<(usize, NodeId), Dnf>,
    budget: &DnfBudget,
) -> Option<Dnf> {
    let terms = graph
        .outgoing(node)
        .iter()
        .map(|&eid| {
            let edge = graph.edge(eid);
            let mut term = Dnf::atom(eid).or(&delete[edge.to]);
            if !edge.fulfilled.contains(ev) {
                term = term.or(&fail[&(ev_index, edge.to)]);
            }
            term
        })
        .collect();
    Dnf::all_bounded_estimated(terms, budget)
}

/// Tarjan's strongly connected components, returned in reverse topological
/// order of the condensation (components with no edges into later components
/// come first), which is the order the fixpoint iteration wants.
pub(crate) fn strongly_connected_components(graph: &TableauGraph) -> Vec<Vec<NodeId>> {
    struct Tarjan<'g> {
        graph: &'g TableauGraph,
        index: Vec<Option<usize>>,
        lowlink: Vec<usize>,
        on_stack: Vec<bool>,
        stack: Vec<NodeId>,
        next_index: usize,
        components: Vec<Vec<NodeId>>,
    }
    impl Tarjan<'_> {
        fn visit(&mut self, v: NodeId) {
            self.index[v] = Some(self.next_index);
            self.lowlink[v] = self.next_index;
            self.next_index += 1;
            self.stack.push(v);
            self.on_stack[v] = true;
            for &eid in self.graph.outgoing(v) {
                let w = self.graph.edge(eid).to;
                if self.index[w].is_none() {
                    self.visit(w);
                    self.lowlink[v] = self.lowlink[v].min(self.lowlink[w]);
                } else if self.on_stack[w] {
                    self.lowlink[v] = self.lowlink[v].min(self.index[w].unwrap());
                }
            }
            if self.lowlink[v] == self.index[v].unwrap() {
                let mut component = Vec::new();
                loop {
                    let w = self.stack.pop().expect("stack cannot be empty here");
                    self.on_stack[w] = false;
                    component.push(w);
                    if w == v {
                        break;
                    }
                }
                self.components.push(component);
            }
        }
    }
    let n = graph.node_count();
    let mut tarjan = Tarjan {
        graph,
        index: vec![None; n],
        lowlink: vec![0; n],
        on_stack: vec![false; n],
        stack: Vec::new(),
        next_index: 0,
        components: Vec::new(),
    };
    for v in 0..n {
        if tarjan.index[v].is_none() {
            tarjan.visit(v);
        }
    }
    // Tarjan emits components in reverse topological order already.
    tarjan.components
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::{CmpOp, Term};
    use crate::tableau::valid_pure;
    use crate::theory::{LinearTheory, PropositionalTheory};

    fn p() -> Ltl {
        Ltl::prop("P")
    }
    fn q() -> Ltl {
        Ltl::prop("Q")
    }

    #[test]
    fn pure_temporal_agreement_with_iter() {
        let theory = PropositionalTheory::new();
        let alg = AlgorithmB::new(&theory, VarSpec::all_state());
        let formulas = vec![
            p().or(p().not()),
            p().always().implies(p()),
            p().always().implies(p().eventually()),
            p().eventually().always().implies(p().always().eventually()),
            p().always().eventually().implies(p().eventually().always()),
            p().until(q()).iff(q().or(p().and(p().until(q()).next()))),
            p().eventually(),
            p().until(q()),
        ];
        for f in formulas {
            let expected = if valid_pure(&f) { Decision::Valid } else { Decision::NotValid };
            assert_eq!(alg.decide(&f), expected, "disagreement on {f}");
        }
    }

    #[test]
    fn condition_of_valid_formula_is_top() {
        let theory = PropositionalTheory::new();
        let alg = AlgorithmB::new(&theory, VarSpec::all_state());
        let cond = alg.condition(&p().or(p().not()));
        assert!(cond.valid_in_pure_tl());
        assert!(cond.outer_rounds() >= 1);
    }

    #[test]
    fn state_variable_example_from_section_5_1() {
        // □(x > 0) ∨ □(x < 1): not valid when x is a state variable.
        let gt = Ltl::cmp(Term::var("x"), CmpOp::Gt, Term::int(0));
        let lt = Ltl::cmp(Term::var("x"), CmpOp::Lt, Term::int(1));
        let formula = gt.always().or(lt.always());
        let linear = LinearTheory::new();
        let alg = AlgorithmB::new(&linear, VarSpec::all_state());
        assert_eq!(alg.decide(&formula), Decision::NotValid);
    }

    #[test]
    fn extralogical_variable_example_from_section_5_1() {
        // □(x > 0) ∨ □(x < 1): valid when x is extralogical (time-independent).
        let gt = Ltl::cmp(Term::var("x"), CmpOp::Gt, Term::int(0));
        let lt = Ltl::cmp(Term::var("x"), CmpOp::Lt, Term::int(1));
        let formula = gt.always().or(lt.always());
        let linear = LinearTheory::new();
        let alg = AlgorithmB::new(&linear, VarSpec::with_extralogical(["x"]));
        assert_eq!(alg.decide(&formula), Decision::Valid);
    }

    #[test]
    fn state_theory_example_is_valid_with_algorithm_b_too() {
        let a_ge_1 = Ltl::cmp(Term::var("a"), CmpOp::Ge, Term::int(1));
        let a_gt_0 = Ltl::cmp(Term::var("a"), CmpOp::Gt, Term::int(0));
        let formula = a_ge_1.always().implies(a_gt_0.eventually());
        let linear = LinearTheory::new();
        let alg = AlgorithmB::new(&linear, VarSpec::all_state());
        assert_eq!(alg.decide(&formula), Decision::Valid);
    }

    #[test]
    fn bounded_decision_agrees_with_unbounded_on_small_formulas() {
        let theory = PropositionalTheory::new();
        let alg = AlgorithmB::new(&theory, VarSpec::all_state());
        let formulas = vec![
            p().or(p().not()),
            p().always().implies(p().eventually()),
            p().eventually(),
            p().until(q()),
        ];
        let budget = ResourceBudget::default().with_max_enumeration(alg.selection_limit);
        for f in formulas {
            assert_eq!(
                alg.decide_budgeted(&f, &budget).unwrap_or(Decision::Unknown),
                alg.decide(&f),
                "budgeted and unbudgeted decisions differ on {f}"
            );
        }
    }

    #[test]
    fn tiny_budgets_yield_unknown_not_a_wrong_answer() {
        let theory = PropositionalTheory::new();
        let alg = AlgorithmB::new(&theory, VarSpec::all_state());
        let tight = ResourceBudget::unbounded().with_max_implicants(1);
        // ◇P ∨ ◇Q is NOT valid: under a 1-implicant budget the answer may
        // degrade to Unknown (an Err) but must never become Valid.
        let not_valid = p().eventually().or(q().eventually());
        assert!(!matches!(alg.decide_budgeted(&not_valid, &tight), Ok(Decision::Valid)));
        // □P ⊃ ◇P IS valid: under the same budget the answer may degrade to
        // Unknown but must never become NotValid.
        let valid = p().always().implies(p().eventually());
        assert!(!matches!(alg.decide_budgeted(&valid, &tight), Ok(Decision::NotValid)));
        // And a near-zero build budget trips the construction phase.
        let no_graph = ResourceBudget::unbounded().with_max_nodes(1).with_max_edges(1);
        assert!(alg.decide_budgeted(&not_valid, &no_graph).is_err());
    }

    #[test]
    fn budgeted_decisions_name_the_exhausted_resource() {
        let theory = PropositionalTheory::new();
        let alg = AlgorithmB::new(&theory, VarSpec::all_state());
        let not_valid = p().eventually().or(q().eventually());
        // A 1-node/1-edge build budget trips during construction.
        let no_graph = ResourceBudget::unbounded().with_max_nodes(1).with_max_edges(1);
        assert!(matches!(
            alg.decide_budgeted(&not_valid, &no_graph),
            Err(Exhaustion::Nodes | Exhaustion::Edges)
        ));
        // A cancelled token is reported as such from any phase.
        let token = crate::pool::CancelToken::new();
        token.cancel();
        let cancelled = ResourceBudget::unbounded().with_cancel(token);
        assert_eq!(alg.decide_budgeted(&not_valid, &cancelled), Err(Exhaustion::Cancelled));
    }

    #[test]
    fn disjuncts_expose_edge_labels() {
        let theory = PropositionalTheory::new();
        let alg = AlgorithmB::new(&theory, VarSpec::all_state());
        let cond = alg.condition(&p().eventually());
        // ◇P is not valid; the condition should be non-trivial and expose labels.
        assert!(!cond.valid_in_pure_tl());
        let _ = cond.disjuncts();
        assert!(cond.graph().node_count() >= 1);
    }
}
