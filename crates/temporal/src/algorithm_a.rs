//! Algorithm A of Appendix B §4: the tableau method with theory-pruned edges.
//!
//! Before (and during) the `Iter` deletion loop, every edge whose conjunction
//! of literals is unsatisfiable in the specialized theory `T` is deleted.  The
//! formula `A` is valid in the combined theory `TL(T)` iff the initial node of
//! `Graph(¬A)` is deleted.
//!
//! As in the report, Algorithm A interprets every constraint variable as a
//! *state* variable (its value may differ from instant to instant); formulas
//! whose intended reading requires extralogical variables should be decided
//! with Algorithm B instead.

use crate::syntax::Ltl;
use crate::tableau::{prune, TableauGraph};
use crate::theory::Theory;

/// Statistics of one run of Algorithm A, for reporting and benchmarking.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AlgorithmAReport {
    /// `true` if the queried formula is satisfiable (for [`AlgorithmA::satisfiable`])
    /// or valid (for [`AlgorithmA::valid`]).
    pub answer: bool,
    /// Nodes in the constructed graph before deletion.
    pub nodes: usize,
    /// Edges in the constructed graph before deletion.
    pub edges: usize,
    /// Nodes surviving the deletion loop.
    pub live_nodes: usize,
    /// Edges surviving the deletion loop.
    pub live_edges: usize,
    /// Passes of the deletion loop.
    pub iterations: usize,
}

/// The combined decision procedure obtained by pruning the tableau with a theory oracle.
pub struct AlgorithmA<'t> {
    theory: &'t dyn Theory,
}

impl<'t> AlgorithmA<'t> {
    /// Creates the procedure over the given specialized theory.
    pub fn new(theory: &'t dyn Theory) -> AlgorithmA<'t> {
        AlgorithmA { theory }
    }

    /// Decides satisfiability of `formula` in `TL(T)` (state-variable reading).
    pub fn satisfiable(&self, formula: &Ltl) -> bool {
        self.satisfiable_report(formula).answer
    }

    /// Decides satisfiability and returns graph statistics.
    pub fn satisfiable_report(&self, formula: &Ltl) -> AlgorithmAReport {
        let graph = TableauGraph::build(formula);
        let pruned = prune(&graph, self.theory);
        AlgorithmAReport {
            answer: pruned.node_alive(graph.initial()),
            nodes: graph.node_count(),
            edges: graph.edge_count(),
            live_nodes: pruned.live_nodes(),
            live_edges: pruned.live_edges(),
            iterations: pruned.iterations,
        }
    }

    /// Decides validity of `formula` in `TL(T)` (state-variable reading).
    pub fn valid(&self, formula: &Ltl) -> bool {
        self.valid_report(formula).answer
    }

    /// Decides validity and returns graph statistics for `Graph(¬formula)`.
    pub fn valid_report(&self, formula: &Ltl) -> AlgorithmAReport {
        let mut report = self.satisfiable_report(&formula.clone().not());
        report.answer = !report.answer;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::{CmpOp, Term};
    use crate::theory::{LinearTheory, PropositionalTheory};

    #[test]
    fn pure_temporal_validity_matches_tableau() {
        let theory = PropositionalTheory::new();
        let alg = AlgorithmA::new(&theory);
        let p = Ltl::prop("P");
        assert!(alg.valid(&p.clone().or(p.clone().not())));
        assert!(!alg.valid(&p.clone().eventually()));
        assert!(alg.valid(&p.clone().always().implies(p.eventually())));
    }

    #[test]
    fn report_example_henceforth_a_ge_1_implies_eventually_a_gt_0() {
        // "Henceforth a >= 1 implies eventually a > 0" — the motivating example
        // of Appendix B §1; valid over the integers, not in pure temporal logic.
        let a_ge_1 = Ltl::cmp(Term::var("a"), CmpOp::Ge, Term::int(1));
        let a_gt_0 = Ltl::cmp(Term::var("a"), CmpOp::Gt, Term::int(0));
        let formula = a_ge_1.always().implies(a_gt_0.eventually());

        let linear = LinearTheory::new();
        assert!(AlgorithmA::new(&linear).valid(&formula));

        let prop = PropositionalTheory::new();
        assert!(!AlgorithmA::new(&prop).valid(&formula));
    }

    #[test]
    fn report_example_double_is_twice() {
        // □(y = x + x) ⊃ □(y = 2x), valid in the linear theory (x, y state variables).
        let double = Ltl::cmp(Term::var("y"), CmpOp::Eq, Term::var("x").plus(Term::var("x")));
        let twice = Ltl::cmp(Term::var("y"), CmpOp::Eq, Term::var("x").times(2));
        let formula = double.always().implies(twice.always());
        let linear = LinearTheory::new();
        assert!(AlgorithmA::new(&linear).valid(&formula));
    }

    #[test]
    fn state_variable_reading_of_disjunction_example() {
        // □(x > 0) ∨ □(x < 1) is NOT valid when x is a state variable
        // (Appendix B §5.1).
        let gt = Ltl::cmp(Term::var("x"), CmpOp::Gt, Term::int(0));
        let lt = Ltl::cmp(Term::var("x"), CmpOp::Lt, Term::int(1));
        let formula = gt.always().or(lt.always());
        let linear = LinearTheory::new();
        assert!(!AlgorithmA::new(&linear).valid(&formula));
    }

    #[test]
    fn report_contains_graph_statistics() {
        let theory = PropositionalTheory::new();
        let alg = AlgorithmA::new(&theory);
        let report =
            alg.valid_report(&Ltl::prop("P").eventually().implies(Ltl::prop("P").eventually()));
        assert!(report.answer);
        assert!(report.nodes >= 1);
        assert!(report.edges >= 1);
        assert!(report.live_nodes <= report.nodes);
    }
}
