//! Model-theoretic semantics of the temporal logic over concrete computation
//! sequences.
//!
//! An interpretation in the report is an infinite sequence of states.  This
//! module represents such sequences as *lassos*: a finite list of states whose
//! last position loops back to a designated position (an ultimately periodic
//! word).  A finite computation is represented, as the report prescribes for
//! the interval logic, by extending its last state forever — i.e. a lasso whose
//! loop is the final state alone.
//!
//! Evaluation is exact: the satisfaction sets of all subformulas are computed
//! bottom-up by fixpoint iteration over the lasso positions, so `□`, `◇` and the
//! weak `U` are interpreted over the genuinely infinite unrolling.

use std::collections::BTreeMap;

use crate::syntax::{Atom, Ltl};

/// A single state of a computation: truth values for propositions and integer
/// values for the variables used by constraint atoms.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TlState {
    props: BTreeMap<String, bool>,
    vars: BTreeMap<String, i64>,
}

impl TlState {
    /// Creates an empty state (all propositions false, no variables bound).
    pub fn new() -> TlState {
        TlState::default()
    }

    /// Sets the truth value of a proposition, returning `self` for chaining.
    pub fn with_prop(mut self, name: impl Into<String>, value: bool) -> TlState {
        self.props.insert(name.into(), value);
        self
    }

    /// Sets the value of an integer variable, returning `self` for chaining.
    pub fn with_var(mut self, name: impl Into<String>, value: i64) -> TlState {
        self.vars.insert(name.into(), value);
        self
    }

    /// Sets the truth value of a proposition.
    pub fn set_prop(&mut self, name: impl Into<String>, value: bool) {
        self.props.insert(name.into(), value);
    }

    /// Sets the value of an integer variable.
    pub fn set_var(&mut self, name: impl Into<String>, value: i64) {
        self.vars.insert(name.into(), value);
    }

    /// The truth value of a proposition (unlisted propositions are false).
    pub fn prop(&self, name: &str) -> bool {
        self.props.get(name).copied().unwrap_or(false)
    }

    /// The value of an integer variable, if bound.
    pub fn var(&self, name: &str) -> Option<i64> {
        self.vars.get(name).copied()
    }

    /// Evaluates an atom in this state.
    ///
    /// Constraint atoms with unbound variables evaluate to `false`.
    pub fn eval_atom(&self, atom: &Atom) -> bool {
        match atom {
            Atom::Prop(name) => self.prop(name),
            Atom::Cmp { lhs, op, rhs } => {
                let lookup = |name: &str| self.var(name);
                match (lhs.eval(&lookup), rhs.eval(&lookup)) {
                    (Some(a), Some(b)) => op.eval(a, b),
                    _ => false,
                }
            }
        }
    }
}

/// An ultimately periodic computation sequence (a lasso).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TlTrace {
    states: Vec<TlState>,
    loop_start: usize,
}

impl TlTrace {
    /// Builds a trace from a finite list of states, extending the final state
    /// forever (the report's convention for finite computations).
    ///
    /// # Panics
    ///
    /// Panics if `states` is empty.
    pub fn finite(states: Vec<TlState>) -> TlTrace {
        assert!(!states.is_empty(), "a computation must contain at least one state");
        let loop_start = states.len() - 1;
        TlTrace { states, loop_start }
    }

    /// Builds an ultimately periodic trace looping back to `loop_start`.
    ///
    /// # Panics
    ///
    /// Panics if `states` is empty or `loop_start` is out of range.
    pub fn lasso(states: Vec<TlState>, loop_start: usize) -> TlTrace {
        assert!(!states.is_empty(), "a computation must contain at least one state");
        assert!(loop_start < states.len(), "loop start must index an existing state");
        TlTrace { states, loop_start }
    }

    /// Number of distinct represented positions.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Always `false`: traces contain at least one state.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The position the final position loops back to.
    pub fn loop_start(&self) -> usize {
        self.loop_start
    }

    /// The state at a represented position.
    pub fn state(&self, index: usize) -> &TlState {
        &self.states[index]
    }

    /// The successor of a represented position in the infinite unrolling.
    pub fn successor(&self, index: usize) -> usize {
        if index + 1 < self.states.len() {
            index + 1
        } else {
            self.loop_start
        }
    }

    /// Evaluates `formula` at represented position `index`.
    pub fn eval_at(&self, formula: &Ltl, index: usize) -> bool {
        assert!(index < self.states.len(), "position out of range");
        self.satisfaction(formula)[index]
    }

    /// Evaluates `formula` at the initial position.
    pub fn eval(&self, formula: &Ltl) -> bool {
        self.eval_at(formula, 0)
    }

    /// Computes the satisfaction vector of `formula` over all represented positions.
    pub fn satisfaction(&self, formula: &Ltl) -> Vec<bool> {
        let n = self.states.len();
        match formula {
            Ltl::True => vec![true; n],
            Ltl::False => vec![false; n],
            Ltl::Atom(a) => (0..n).map(|i| self.states[i].eval_atom(a)).collect(),
            Ltl::Not(a) => self.satisfaction(a).into_iter().map(|b| !b).collect(),
            Ltl::And(a, b) => {
                let sa = self.satisfaction(a);
                let sb = self.satisfaction(b);
                sa.into_iter().zip(sb).map(|(x, y)| x && y).collect()
            }
            Ltl::Or(a, b) => {
                let sa = self.satisfaction(a);
                let sb = self.satisfaction(b);
                sa.into_iter().zip(sb).map(|(x, y)| x || y).collect()
            }
            Ltl::Next(a) => {
                let sa = self.satisfaction(a);
                (0..n).map(|i| sa[self.successor(i)]).collect()
            }
            Ltl::Always(a) => {
                // Greatest fixpoint of  X = a ∧ ◦X.
                let sa = self.satisfaction(a);
                self.greatest_fixpoint(|next, i| sa[i] && next[self.successor(i)])
            }
            Ltl::Eventually(a) => {
                // Least fixpoint of  X = a ∨ ◦X.
                let sa = self.satisfaction(a);
                self.least_fixpoint(|next, i| sa[i] || next[self.successor(i)])
            }
            Ltl::Until(p, q) => {
                // Weak until: greatest fixpoint of  X = q ∨ (p ∧ ◦X).
                let sp = self.satisfaction(p);
                let sq = self.satisfaction(q);
                self.greatest_fixpoint(|next, i| sq[i] || (sp[i] && next[self.successor(i)]))
            }
        }
    }

    fn greatest_fixpoint<F>(&self, step: F) -> Vec<bool>
    where
        F: Fn(&[bool], usize) -> bool,
    {
        let n = self.states.len();
        let mut current = vec![true; n];
        loop {
            let next: Vec<bool> = (0..n).map(|i| step(&current, i)).collect();
            if next == current {
                return current;
            }
            current = next;
        }
    }

    fn least_fixpoint<F>(&self, step: F) -> Vec<bool>
    where
        F: Fn(&[bool], usize) -> bool,
    {
        let n = self.states.len();
        let mut current = vec![false; n];
        loop {
            let next: Vec<bool> = (0..n).map(|i| step(&current, i)).collect();
            if next == current {
                return current;
            }
            current = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::{CmpOp, Term};

    fn s(p: bool, q: bool) -> TlState {
        TlState::new().with_prop("P", p).with_prop("Q", q)
    }

    #[test]
    fn atoms_and_boolean_connectives() {
        let trace = TlTrace::finite(vec![s(true, false), s(false, true)]);
        let p = Ltl::prop("P");
        let q = Ltl::prop("Q");
        assert!(trace.eval(&p));
        assert!(!trace.eval(&q));
        assert!(trace.eval(&p.clone().and(q.clone().not())));
        assert!(trace.eval_at(&q, 1));
        assert!(!trace.eval_at(&p, 1));
    }

    #[test]
    fn next_follows_the_lasso() {
        let trace = TlTrace::lasso(vec![s(true, false), s(false, true)], 0);
        let p = Ltl::prop("P");
        // Position 1 loops back to position 0 where P holds.
        assert!(trace.eval_at(&p.clone().next(), 1));
        assert!(!trace.eval_at(&p.next(), 0));
    }

    #[test]
    fn always_on_finite_trace_uses_stutter_extension() {
        // P holds in the last state, so □P holds from position 1 onward
        // because the final state repeats forever.
        let trace = TlTrace::finite(vec![s(false, false), s(true, false)]);
        let always_p = Ltl::prop("P").always();
        assert!(!trace.eval_at(&always_p, 0));
        assert!(trace.eval_at(&always_p, 1));
    }

    #[test]
    fn eventually_distinguishes_lasso_from_finite() {
        // Q never holds; ◇Q is false everywhere.
        let trace = TlTrace::lasso(vec![s(true, false), s(true, false)], 0);
        assert!(!trace.eval(&Ltl::prop("Q").eventually()));
        // Q holds in the loop, so ◇Q holds everywhere.
        let trace = TlTrace::lasso(vec![s(true, false), s(false, true)], 0);
        assert!(trace.eval(&Ltl::prop("Q").eventually()));
    }

    #[test]
    fn weak_until_is_satisfied_by_invariance() {
        // P forever, Q never: weak U(P, Q) holds.
        let trace = TlTrace::lasso(vec![s(true, false)], 0);
        assert!(trace.eval(&Ltl::prop("P").until(Ltl::prop("Q"))));
        // Strong until requires the eventuality.
        assert!(!trace.eval(&Ltl::prop("P").strong_until(Ltl::prop("Q"))));
    }

    #[test]
    fn weak_until_requires_p_up_to_q() {
        let trace = TlTrace::finite(vec![s(true, false), s(false, false), s(false, true)]);
        // P fails at position 1 before Q becomes true at 2.
        assert!(!trace.eval(&Ltl::prop("P").until(Ltl::prop("Q"))));
        let trace = TlTrace::finite(vec![s(true, false), s(true, false), s(false, true)]);
        assert!(trace.eval(&Ltl::prop("P").until(Ltl::prop("Q"))));
    }

    #[test]
    fn valid_implication_from_the_report() {
        // <>[]P ⊃ []<>P is valid: check on a few lassos.
        let f = Ltl::prop("P").always().eventually().implies(Ltl::prop("P").eventually().always());
        for states in [
            vec![s(false, false), s(true, false)],
            vec![s(true, false), s(false, false)],
            vec![s(false, false), s(false, false)],
        ] {
            for loop_start in 0..states.len() {
                let trace = TlTrace::lasso(states.clone(), loop_start);
                assert!(trace.eval(&f), "failed on {states:?} loop {loop_start}");
            }
        }
    }

    #[test]
    fn constraint_atoms_read_state_variables() {
        let s0 = TlState::new().with_var("x", 3).with_var("y", 6);
        let s1 = TlState::new().with_var("x", 2).with_var("y", 5);
        let trace = TlTrace::finite(vec![s0, s1]);
        let double = Ltl::cmp(Term::var("y"), CmpOp::Eq, Term::var("x").plus(Term::var("x")));
        assert!(trace.eval(&double));
        assert!(!trace.eval(&double.clone().always()));
    }

    #[test]
    fn unbound_variables_make_constraints_false() {
        let trace = TlTrace::finite(vec![TlState::new()]);
        let c = Ltl::cmp(Term::var("z"), CmpOp::Ge, Term::int(0));
        assert!(!trace.eval(&c));
    }
}
