//! The interned-implicant condition store.
//!
//! The Appendix B §5.3 condition fixpoint manipulates monotone DNFs whose
//! implicants overlap massively: every `fail`/`delete` equation of a sweep
//! re-conjoins the same `□¬prop(e)` terms, consecutive Jacobi sweeps differ in
//! a handful of equations, and absorption keeps collapsing products back onto
//! a small set of minimal implicants.  The naive
//! `BTreeSet<BTreeSet<usize>>` representation (see [`super::Dnf`]) pays for
//! that overlap on every operation — deep clones of every atom set, an O(n²)
//! absorption rebuild per product, and a full structural comparison per
//! convergence test.  On the nested weak-until translations of interval
//! formulas (`[ => Q ] []P`, ROADMAP's measured blowup) those constants turn a
//! moderate-sized fixpoint into one that does not terminate in hours.
//!
//! A [`ConditionStore`] removes the duplication instead of re-paying it,
//! following the same hash-consing discipline as the PR 1 formula arena:
//!
//! * **Implicants are interned**: each distinct sorted atom set is stored
//!   once and handled as a `Copy` [`ImplicantId`].
//! * **DNFs are interned**: each distinct antichain of implicant ids is a
//!   [`DnfId`], so the fixpoint's convergence test ("did this equation
//!   change?") is an integer comparison instead of a structural one.
//! * **Products are memoized**: `∧`/`∨` results are cached per `(DnfId,
//!   DnfId)` pair, so re-evaluating an equation whose inputs did not change
//!   since the last round costs a handful of hash lookups — and the PR 7
//!   worklist engine goes one step further and never re-visits such an
//!   equation at all (see [`StoreStats::equations_skipped`]).
//! * **Absorption is incremental and pre-interning**: products stream
//!   through a bitset antichain builder — implicants as flat bitsets over the atom
//!   universe, subsumption a few early-exiting word comparisons, candidates
//!   that absorption discards never allocated, interned, or charged; there
//!   is no quadratic all-pairs rebuild and no pre-absorption
//!   materialization.  Structural shortcuts (row collapse, per-row residual
//!   minimization — see [`ConditionStore::and`]) keep the common fixpoint
//!   products far below their nominal pair counts.
//! * **Budgets charge distinct implicants**: every *newly interned* implicant
//!   charges one unit to the shared [`DnfBudget`] cell
//!   ([`DnfBudget::charge`]).  Re-deriving an implicant the computation has
//!   already seen is free, so the budget measures the size of the condition
//!   space actually retained — not the pre-absorption product estimate the
//!   PR 2 budget had to cut on (which tripped even when absorption would have
//!   collapsed the product to a handful of implicants).
//!
//! # Concurrency
//!
//! The store itself is a plain single-writer structure.  Parallel fixpoint
//! rounds keep determinism by the snapshot discipline of
//! `ilogic_core::arena::ArenaSnapshot`: a round first attempts every equation
//! of its ready set — under the PR 7 worklist engine only the equations whose
//! inputs changed since their last evaluation, under a full (Jacobi) sweep
//! all of them — against a [`FrozenStore`] view (read-only — memo lookups may
//! *hit* but never insert), batched freely across workers, and then computes
//! the remaining equations sequentially in task order against the mutable
//! store.  Because a frozen evaluation succeeds exactly when the mutable
//! evaluation would have touched nothing, and an equation with unchanged
//! inputs would have replayed entirely from the memo tables anyway, the store
//! contents — ids, memo tables, and the distinct-implicant budget charge —
//! after a round are identical at every worker count, including one, and
//! identical whether or not the unchanged equations were skipped.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use super::{Dnf, DnfBudget};

/// An interned implicant: a distinct sorted set of edge atoms, stored once.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ImplicantId(u32);

/// An interned monotone DNF: a distinct antichain of [`ImplicantId`]s.
///
/// Because interning is canonical, two conditions are semantically equal iff
/// their `DnfId`s are equal — the O(1) comparison the fixpoint convergence
/// test runs thousands of times per decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DnfId(u32);

/// The empty implicant (the conjunction of no atoms, i.e. `true`), pre-seeded
/// in every store.
const EMPTY_IMPLICANT: ImplicantId = ImplicantId(0);

impl ConditionStore {
    /// The condition `false` (no implicants), pre-seeded in every store.
    pub const BOTTOM: DnfId = DnfId(0);
    /// The condition `true` (the empty implicant alone), pre-seeded in every
    /// store.
    pub const TOP: DnfId = DnfId(1);
}

/// Counters describing how much sharing a [`ConditionStore`] achieved.
///
/// Surfaced per decision through `Condition::store_stats` and — session-side —
/// through `CheckStats::condition` / the `Session` cumulative counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Distinct implicants interned (the quantity the [`DnfBudget`] charges;
    /// seeds excluded).  Monotone over the store's lifetime, so this is also
    /// the peak distinct-implicant count of the computation.
    pub interned_implicants: usize,
    /// Distinct DNFs (antichains) interned, seeds excluded.
    pub interned_dnfs: usize,
    /// `∧`/`∨` products answered from the `(DnfId, DnfId)` memo tables
    /// (identity shortcuts such as `x ∧ ⊤ = x` are not counted).
    pub memo_hits: u64,
    /// `∧`/`∨` products that had to be computed (and were then memoized).
    pub memo_misses: u64,
    /// Widest antichain interned: the largest implicant count of any single
    /// condition DNF the computation produced.
    pub peak_dnf_width: usize,
    /// Fixpoint rounds run: every worklist (or full-sweep) round of the §5.3
    /// iteration, `fail` and `delete` phases both counted.  The evaluated
    /// Boolean fixpoint reports its rounds here too (with zero interning
    /// counters), and the naive baseline reports rounds so differential tests
    /// can compare convergence.
    pub rounds: u64,
    /// Equations actually evaluated across all rounds.  Under the semi-naive
    /// worklist engine only equations whose inputs changed since their last
    /// evaluation are evaluated; under a full (Jacobi) sweep this is
    /// `rounds × equations`.
    pub equations_evaluated: u64,
    /// Equations *skipped* by the worklist engine: per round, the equations
    /// of the active phase whose inputs did not change and which a Jacobi
    /// sweep would have re-evaluated (from memo) anyway.  Zero for full-sweep
    /// and baseline runs — the bench-smoke regression guard asserts it is
    /// strictly positive on the wide tableaux.
    pub equations_skipped: u64,
}

impl StoreStats {
    /// Accumulates `other` into `self`: counts add, the peak takes the max.
    /// Used by the session to keep cumulative counters across checks.
    pub fn merge(&mut self, other: StoreStats) {
        self.interned_implicants += other.interned_implicants;
        self.interned_dnfs += other.interned_dnfs;
        self.memo_hits += other.memo_hits;
        self.memo_misses += other.memo_misses;
        self.peak_dnf_width = self.peak_dnf_width.max(other.peak_dnf_width);
        self.rounds += other.rounds;
        self.equations_evaluated += other.equations_evaluated;
        self.equations_skipped += other.equations_skipped;
    }
}

impl std::ops::AddAssign for StoreStats {
    fn add_assign(&mut self, other: StoreStats) {
        self.merge(other);
    }
}

/// A multiply-xor hasher (FxHash-style) for the store's id-keyed memo maps —
/// the same trade the core arena makes: these keys are tiny `Copy` values hit
/// on every product, where SipHash's DoS resistance buys nothing.
#[derive(Clone, Copy, Default)]
struct StoreHasher {
    hash: u64,
}

impl StoreHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }
}

impl Hasher for StoreHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

type StoreMap<K, V> = HashMap<K, V, BuildHasherDefault<StoreHasher>>;

/// The interned implicant/DNF arena; see the [module documentation](self).
#[derive(Debug, Default)]
pub struct ConditionStore {
    /// Id → sorted atom list.  Slot 0 is the empty implicant.
    implicants: Vec<Box<[u32]>>,
    implicant_lookup: StoreMap<Box<[u32]>, ImplicantId>,
    /// Id → antichain, as an id-sorted implicant list.  Slots 0/1 are ⊥/⊤.
    dnfs: Vec<Box<[ImplicantId]>>,
    dnf_lookup: StoreMap<Box<[ImplicantId]>, DnfId>,
    /// Memoized products, keyed on the (commutatively normalized) operand
    /// pair.
    and_memo: StoreMap<(DnfId, DnfId), DnfId>,
    or_memo: StoreMap<(DnfId, DnfId), DnfId>,
    /// One past the largest atom interned so far — the width of the bitset
    /// universe the product builders work over.
    atom_bound: u32,
    stats: StoreStats,
}

impl ConditionStore {
    /// An empty store, pre-seeded with ⊥, ⊤ and the empty implicant (the
    /// seeds are not charged to any budget).
    pub fn new() -> ConditionStore {
        let mut store = ConditionStore::default();
        store.implicants.push(Box::from([] as [u32; 0]));
        store.implicant_lookup.insert(Box::from([] as [u32; 0]), EMPTY_IMPLICANT);
        store.dnfs.push(Box::from([] as [ImplicantId; 0])); // ⊥
        store.dnf_lookup.insert(Box::from([] as [ImplicantId; 0]), Self::BOTTOM);
        store.dnfs.push(Box::from([EMPTY_IMPLICANT])); // ⊤
        store.dnf_lookup.insert(Box::from([EMPTY_IMPLICANT]), Self::TOP);
        store
    }

    /// The interning/memoization counters accumulated so far.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Credits memo hits observed through read-only [`FrozenStore`] views
    /// (which cannot update the counters themselves).  The fixpoint sweep
    /// calls this once per sweep with the tally of its frozen-settled
    /// equations — a pure function of the frozen store, so the counters stay
    /// identical at every worker count.
    pub fn record_frozen_hits(&mut self, hits: u64) {
        self.stats.memo_hits += hits;
    }

    /// Records one fixpoint round of the worklist engine: how many equations
    /// the round actually evaluated (its ready set) and how many it skipped
    /// because none of their inputs changed since their last evaluation.  A
    /// full (Jacobi) sweep records `skipped == 0`.  Both tallies are pure
    /// functions of the iteration history, so — like every other counter —
    /// they are identical at every worker count.
    pub fn record_sweep(&mut self, evaluated: u64, skipped: u64) {
        self.stats.rounds += 1;
        self.stats.equations_evaluated += evaluated;
        self.stats.equations_skipped += skipped;
    }

    /// Number of distinct implicants interned (seeds excluded) — the quantity
    /// charged to the budget.
    pub fn implicant_count(&self) -> usize {
        self.implicants.len() - 1
    }

    /// Number of distinct DNFs interned (the ⊥/⊤ seeds excluded).
    pub fn dnf_count(&self) -> usize {
        self.dnfs.len() - 2
    }

    /// Number of implicants of the DNF `id`.
    pub fn width(&self, id: DnfId) -> usize {
        self.dnfs[id.0 as usize].len()
    }

    /// `true` iff `id` is the condition `false`.
    pub fn is_bottom(&self, id: DnfId) -> bool {
        id == Self::BOTTOM
    }

    /// `true` iff `id` is the condition `true`.
    pub fn is_top(&self, id: DnfId) -> bool {
        id == Self::TOP
    }

    /// A borrowed view of the DNF `id`; see [`DnfRef`].
    pub fn dnf(&self, id: DnfId) -> DnfRef<'_> {
        DnfRef { store: self, id }
    }

    /// A read-only view for frozen-phase (parallel) evaluation; see
    /// [`FrozenStore`].
    pub fn frozen(&self) -> FrozenStore<'_> {
        FrozenStore { store: self }
    }

    /// Interns the sorted atom list `atoms`, charging the budget if it is
    /// new; `None` when the charge trips the budget.
    fn intern_implicant(&mut self, atoms: Box<[u32]>, budget: &DnfBudget) -> Option<ImplicantId> {
        debug_assert!(atoms.windows(2).all(|w| w[0] < w[1]), "implicant atoms must be sorted");
        match self.implicant_lookup.entry(atoms) {
            Entry::Occupied(hit) => Some(*hit.get()),
            Entry::Vacant(slot) => {
                if !budget.charge(1) {
                    return None;
                }
                let id = ImplicantId(u32::try_from(self.implicants.len()).ok()?);
                if let Some(&last) = slot.key().last() {
                    self.atom_bound = self.atom_bound.max(last + 1);
                }
                self.implicants.push(slot.key().clone());
                self.stats.interned_implicants += 1;
                Some(*slot.insert(id))
            }
        }
    }

    /// Interns an antichain given as an unsorted, possibly duplicated
    /// implicant list (the caller guarantees minimality).
    fn intern_antichain(&mut self, mut members: Vec<ImplicantId>) -> DnfId {
        members.sort_unstable();
        members.dedup();
        let members: Box<[ImplicantId]> = members.into();
        match self.dnf_lookup.entry(members) {
            Entry::Occupied(hit) => *hit.get(),
            Entry::Vacant(slot) => {
                let id = DnfId(
                    u32::try_from(self.dnfs.len()).expect("more than u32::MAX distinct DNFs"),
                );
                self.stats.peak_dnf_width = self.stats.peak_dnf_width.max(slot.key().len());
                self.dnfs.push(slot.key().clone());
                self.stats.interned_dnfs += 1;
                *slot.insert(id)
            }
        }
    }

    /// The condition consisting of the single atom `atom`; `None` when
    /// interning a new implicant trips the budget.
    pub fn atom(&mut self, atom: usize, budget: &DnfBudget) -> Option<DnfId> {
        let atom = u32::try_from(atom).ok()?;
        let implicant = self.intern_implicant(Box::from([atom]), budget)?;
        Some(self.intern_antichain(vec![implicant]))
    }

    /// Interns a legacy [`Dnf`] value, charging every new implicant; `None`
    /// on a budget trip.
    pub fn intern_dnf(&mut self, dnf: &Dnf, budget: &DnfBudget) -> Option<DnfId> {
        let mut members = Vec::with_capacity(dnf.implicant_count());
        for implicant in dnf.implicants() {
            let atoms: Box<[u32]> =
                implicant.iter().map(|&atom| u32::try_from(atom).ok()).collect::<Option<_>>()?;
            members.push(self.intern_implicant(atoms, budget)?);
        }
        // A `Dnf` is canonical (minimal) by construction, so the members
        // already form an antichain.
        Some(self.intern_antichain(members))
    }

    /// Reconstructs the explicit [`Dnf`] behind `id`.
    pub fn extract(&self, id: DnfId) -> Dnf {
        let implicants = self.dnfs[id.0 as usize]
            .iter()
            .map(|&imp| self.implicants[imp.0 as usize].iter().map(|&atom| atom as usize).collect())
            .collect();
        Dnf::from_implicants_unchecked(implicants)
    }

    /// Number of `u64` words a bitset over the currently interned atom
    /// universe needs.
    fn bit_words(&self) -> usize {
        (self.atom_bound as usize).div_ceil(64).max(1)
    }

    /// Writes implicant `imp`'s atom set as a bitset into `out` (sized
    /// `words`).
    fn implicant_bits(&self, imp: ImplicantId, out: &mut [u64]) {
        out.fill(0);
        for &atom in &self.implicants[imp.0 as usize] {
            out[(atom / 64) as usize] |= 1u64 << (atom % 64);
        }
    }

    /// The sorted atom list behind a bitset row.
    fn atoms_of_bits(bits: &[u64]) -> Box<[u32]> {
        let mut atoms = Vec::new();
        for (w, &word) in bits.iter().enumerate() {
            let mut rest = word;
            while rest != 0 {
                let bit = rest.trailing_zeros();
                atoms.push(w as u32 * 64 + bit);
                rest &= rest - 1;
            }
        }
        atoms.into()
    }

    /// The members of `id` sorted by ascending atom-set size (then id):
    /// feeding products and disjunctions shortest-first makes absorption
    /// maximally eager.  The minimal DNF is unique, so processing order can
    /// never change a result — only how much transient work a builder holds.
    fn by_len(&self, id: DnfId) -> Vec<ImplicantId> {
        let mut members = self.dnfs[id.0 as usize].to_vec();
        members.sort_by_key(|&imp| (self.implicants[imp.0 as usize].len(), imp));
        members
    }

    /// Disjunction of two interned conditions.  Infallible in the budget
    /// sense — every implicant of the result already exists in one of the
    /// operands, so nothing new is interned or charged — but still memoized.
    pub fn or(&mut self, a: DnfId, b: DnfId) -> DnfId {
        if a == b || b == Self::BOTTOM {
            return a;
        }
        if a == Self::BOTTOM {
            return b;
        }
        if a == Self::TOP || b == Self::TOP {
            return Self::TOP;
        }
        let key = if a < b { (a, b) } else { (b, a) };
        if let Some(&hit) = self.or_memo.get(&key) {
            self.stats.memo_hits += 1;
            return hit;
        }
        self.stats.memo_misses += 1;
        let mut candidates = self.by_len(a);
        candidates.extend(self.by_len(b));
        candidates.sort_by_key(|&imp| (self.implicants[imp.0 as usize].len(), imp));
        candidates.dedup();
        let words = self.bit_words();
        let mut builder = BitAntichain::new(words);
        let mut bits = vec![0u64; words];
        for &imp in &candidates {
            self.implicant_bits(imp, &mut bits);
            builder.offer(&bits, imp);
        }
        let result = self.intern_antichain(builder.tags);
        self.or_memo.insert(key, result);
        result
    }

    /// Conjunction of two interned conditions: the absorbed product of their
    /// implicant sets.  `None` when interning a *surviving* product implicant
    /// trips the shared budget (the cell is left tripped for every sharer).
    ///
    /// The product never materializes pre-absorption: pairwise unions are
    /// single-word-op bitset ORs streamed through a bitset antichain, where a
    /// candidate subsumed by the running minimal antichain dies on a probe
    /// (a few early-exiting word comparisons) and kills the members it
    /// strictly shrinks.  Only the survivors — the implicants of the
    /// canonical result — are interned and charged; on the measured
    /// `[ => Q ] []P` fixpoint the discarded transients outnumber them by two
    /// orders of magnitude.
    ///
    /// Two structural shortcuts keep the common fixpoint products far below
    /// the nominal `|a|·|b|` pair count:
    ///
    /// * **Row collapse** — if some column implicant is a subset of row
    ///   implicant `ia`, the whole row yields just `ia` (its union with that
    ///   column *is* `ia`, and every other union is a superset).  The
    ///   fixpoint's terms all carry a singleton edge atom, so rows whose
    ///   implicant mentions any of the term's edges collapse without a single
    ///   union.
    /// * **Wider-side rows** — rows come from the wider operand, maximizing
    ///   collapse opportunities.
    pub fn and(&mut self, a: DnfId, b: DnfId, budget: &DnfBudget) -> Option<DnfId> {
        if a == Self::BOTTOM || b == Self::BOTTOM {
            return Some(Self::BOTTOM);
        }
        if a == Self::TOP || a == b {
            return Some(b);
        }
        if b == Self::TOP {
            return Some(a);
        }
        let key = if a < b { (a, b) } else { (b, a) };
        if let Some(&hit) = self.and_memo.get(&key) {
            self.stats.memo_hits += 1;
            return Some(hit);
        }
        self.stats.memo_misses += 1;
        let (rows, cols) = if self.width(a) >= self.width(b) {
            (self.by_len(a), self.by_len(b))
        } else {
            (self.by_len(b), self.by_len(a))
        };
        let words = self.bit_words();
        let mut col_bits = vec![0u64; words * cols.len()];
        for (c, &ib) in cols.iter().enumerate() {
            self.implicant_bits(ib, &mut col_bits[c * words..(c + 1) * words]);
        }
        let mut builder = BitAntichain::new(words);
        let mut residuals = BitAntichain::new(words);
        let mut row_bits = vec![0u64; words];
        let mut scratch = vec![0u64; words];
        'rows: for (row, &ia) in rows.iter().enumerate() {
            // Nothing is interned until the survivors are known, so the
            // budget cannot trip mid-product — but a deadline/cancellation
            // (or another sharer's trip) should still cut a huge product
            // promptly.
            if row % 64 == 0 && budget.poll_interrupts() {
                return None;
            }
            self.implicant_bits(ia, &mut row_bits);
            // A member already ⊆ ia subsumes every union of this row.
            if builder.contains_subset_of(&row_bits) {
                continue;
            }
            // Per-row residual filter: the row's candidates are
            // `ia ∪ ib = ia ∪ (ib ∖ ia)`, so within the row only the
            // *minimal residuals* `ib ∖ ia` matter — `res ⊆ res'` makes the
            // second union a superset of the first.  An empty residual
            // (`ib ⊆ ia`) collapses the whole row to `ia` itself.  On the
            // dense fixpoint products this turns thousands of global
            // antichain offers per row into a handful.
            residuals.clear();
            for c in 0..cols.len() {
                let mut empty = true;
                for (w, &col_word) in col_bits[c * words..(c + 1) * words].iter().enumerate() {
                    scratch[w] = col_word & !row_bits[w];
                    empty &= scratch[w] == 0;
                }
                if empty {
                    builder.offer(&row_bits, ());
                    continue 'rows;
                }
                residuals.offer(&scratch, ());
            }
            for r in 0..residuals.len() {
                for (w, &res_word) in residuals.row(r).iter().enumerate() {
                    scratch[w] = row_bits[w] | res_word;
                }
                builder.offer(&scratch, ());
            }
        }
        let mut survivors = Vec::with_capacity(builder.len());
        for m in 0..builder.len() {
            let atoms = Self::atoms_of_bits(builder.row(m));
            survivors.push(self.intern_implicant(atoms, budget)?);
        }
        let result = self.intern_antichain(survivors);
        self.and_memo.insert(key, result);
        Some(result)
    }

    /// Conjunction of a slice of interned conditions, folded in order (the
    /// per-step results are canonical, so the fold order cannot change the
    /// answer — only which intermediate products get memoized).  `None` on a
    /// budget trip.
    pub fn all(&mut self, terms: &[DnfId], budget: &DnfBudget) -> Option<DnfId> {
        if terms.contains(&Self::BOTTOM) {
            return Some(Self::BOTTOM);
        }
        let mut acc = Self::TOP;
        for &term in terms {
            if budget.tripped() {
                return None;
            }
            acc = self.and(acc, term, budget)?;
        }
        Some(acc)
    }
}

/// Streaming minimal-antichain builder over implicant *bitsets*, with two-way
/// absorption.
///
/// Members are flat bitset rows (`words` `u64`s each) over the store's atom
/// universe; an optional tag of type `T` rides along with each row
/// ([`ConditionStore::or`] tags rows with their already-interned
/// [`ImplicantId`]s, products use `()`).  [`BitAntichain::offer`] checks the
/// candidate against every live member with early-exiting word operations —
/// `member ⊆ candidate` drops the candidate, `candidate ⊂ member` kills the
/// member (swap-removed; the surviving *set* is the unique minimal antichain,
/// so member order is immaterial).  On the dense, heavily-overlapping
/// implicants of the condition fixpoint this probe is an order of magnitude
/// faster than an inverted-index hit count, whose per-atom posting lists grow
/// with exactly the density that makes the probe hot.
struct BitAntichain<T> {
    words: usize,
    /// Flattened live member rows: member `m` occupies
    /// `rows[m * words .. (m + 1) * words]`.
    rows: Vec<u64>,
    /// Per-member tags, parallel to the rows.
    tags: Vec<T>,
}

impl<T> BitAntichain<T> {
    fn new(words: usize) -> BitAntichain<T> {
        BitAntichain { words: words.max(1), rows: Vec::new(), tags: Vec::new() }
    }

    /// Number of live members.
    fn len(&self) -> usize {
        self.tags.len()
    }

    /// Empties the builder, keeping its allocations.
    fn clear(&mut self) {
        self.rows.clear();
        self.tags.clear();
    }

    /// The bitset row of member `m`.
    fn row(&self, m: usize) -> &[u64] {
        &self.rows[m * self.words..(m + 1) * self.words]
    }

    /// `true` iff some live member is a subset of `candidate` (leaves the
    /// builder unchanged) — the probe behind the row-collapse shortcut in
    /// [`ConditionStore::and`].
    fn contains_subset_of(&self, candidate: &[u64]) -> bool {
        (0..self.len()).any(|m| self.row(m).iter().zip(candidate).all(|(&mw, &cw)| mw & !cw == 0))
    }

    /// Offers a candidate implicant: inserted (with `tag`) unless a live
    /// member subsumes it; live members it strictly shrinks are killed.
    fn offer(&mut self, candidate: &[u64], tag: T) {
        let mut m = 0;
        while m < self.len() {
            let row = &self.rows[m * self.words..(m + 1) * self.words];
            let mut member_minus_candidate = 0u64;
            let mut candidate_minus_member = 0u64;
            for (&mw, &cw) in row.iter().zip(candidate) {
                member_minus_candidate |= mw & !cw;
                candidate_minus_member |= cw & !mw;
                if member_minus_candidate != 0 && candidate_minus_member != 0 {
                    break;
                }
            }
            if member_minus_candidate == 0 {
                // member ⊆ candidate (equality included): drop the candidate.
                return;
            }
            if candidate_minus_member == 0 {
                // candidate ⊂ member: kill the member (swap-remove its row
                // and tag; `m` is re-examined with the swapped-in row).
                let last = self.len() - 1;
                if m != last {
                    let (head, tail) = self.rows.split_at_mut(last * self.words);
                    head[m * self.words..(m + 1) * self.words].copy_from_slice(&tail[..self.words]);
                }
                self.rows.truncate(last * self.words);
                self.tags.swap_remove(m);
                continue;
            }
            m += 1;
        }
        self.rows.extend_from_slice(candidate);
        self.tags.push(tag);
    }
}

/// A borrowed, read-only view of one interned DNF.
///
/// The antichain analogue of handing out `&Dnf`: all inspection — width,
/// implicant iteration, evaluation — without extracting the explicit
/// representation.
#[derive(Clone, Copy, Debug)]
pub struct DnfRef<'s> {
    store: &'s ConditionStore,
    id: DnfId,
}

impl<'s> DnfRef<'s> {
    /// The interned id this view refers to.
    pub fn id(&self) -> DnfId {
        self.id
    }

    /// `true` iff the condition is identically false.
    pub fn is_bottom(&self) -> bool {
        self.id == ConditionStore::BOTTOM
    }

    /// `true` iff the condition is identically true.
    pub fn is_top(&self) -> bool {
        self.id == ConditionStore::TOP
    }

    /// The number of implicants.
    pub fn implicant_count(&self) -> usize {
        self.store.width(self.id)
    }

    /// The implicants, each as a sorted slice of edge atoms.
    pub fn implicants(&self) -> impl Iterator<Item = &'s [u32]> + '_ {
        self.store.dnfs[self.id.0 as usize]
            .iter()
            .map(move |&imp| &*self.store.implicants[imp.0 as usize])
    }

    /// Evaluates the condition under an assignment of atoms to Booleans.
    pub fn eval(&self, assignment: &dyn Fn(usize) -> bool) -> bool {
        self.implicants().any(|imp| imp.iter().all(|&atom| assignment(atom as usize)))
    }

    /// Extracts the explicit [`Dnf`].
    pub fn to_dnf(&self) -> Dnf {
        self.store.extract(self.id)
    }
}

/// A read-only store view whose operations answer only when no mutation would
/// be needed.
///
/// This is the parallel-phase half of the sweep discipline described in the
/// [module documentation](self): workers race over frozen evaluations (every
/// op either an identity shortcut or a memo hit), and anything that *would*
/// have interned or memoized defers — `None` — to the sequential phase.  A
/// successful frozen result is exactly the mutable result, and a frozen pass
/// leaves no trace, so store contents stay independent of the worker count.
#[derive(Clone, Copy, Debug)]
pub struct FrozenStore<'s> {
    store: &'s ConditionStore,
}

impl FrozenStore<'_> {
    /// [`ConditionStore::or`] without mutation; `None` when the result is not
    /// already memoized.
    pub fn or(&self, a: DnfId, b: DnfId) -> Option<DnfId> {
        self.or_counting(a, b, &mut 0)
    }

    /// [`FrozenStore::or`] that also counts memo hits into `hits` (identity
    /// shortcuts are not counted, mirroring the mutable path).  A frozen view
    /// cannot update the store's counters itself; the fixpoint sweep tallies
    /// these per settled equation and commits them deterministically.
    pub fn or_counting(&self, a: DnfId, b: DnfId, hits: &mut u64) -> Option<DnfId> {
        if a == b || b == ConditionStore::BOTTOM {
            return Some(a);
        }
        if a == ConditionStore::BOTTOM {
            return Some(b);
        }
        if a == ConditionStore::TOP || b == ConditionStore::TOP {
            return Some(ConditionStore::TOP);
        }
        let key = if a < b { (a, b) } else { (b, a) };
        let hit = self.store.or_memo.get(&key).copied()?;
        *hits += 1;
        Some(hit)
    }

    /// [`ConditionStore::and`] without mutation; `None` when the result is
    /// not already memoized.
    pub fn and(&self, a: DnfId, b: DnfId) -> Option<DnfId> {
        self.and_counting(a, b, &mut 0)
    }

    /// [`FrozenStore::and`] that also counts memo hits into `hits`; see
    /// [`FrozenStore::or_counting`].
    pub fn and_counting(&self, a: DnfId, b: DnfId, hits: &mut u64) -> Option<DnfId> {
        if a == ConditionStore::BOTTOM || b == ConditionStore::BOTTOM {
            return Some(ConditionStore::BOTTOM);
        }
        if a == ConditionStore::TOP || a == b {
            return Some(b);
        }
        if b == ConditionStore::TOP {
            return Some(a);
        }
        let key = if a < b { (a, b) } else { (b, a) };
        let hit = self.store.and_memo.get(&key).copied()?;
        *hits += 1;
        Some(hit)
    }

    /// [`ConditionStore::all`] without mutation; `None` as soon as any fold
    /// step is not already memoized.
    pub fn all(&self, terms: &[DnfId]) -> Option<DnfId> {
        self.all_counting(terms, &mut 0)
    }

    /// [`FrozenStore::all`] that also counts memo hits into `hits`; see
    /// [`FrozenStore::or_counting`].
    pub fn all_counting(&self, terms: &[DnfId], hits: &mut u64) -> Option<DnfId> {
        if terms.contains(&ConditionStore::BOTTOM) {
            return Some(ConditionStore::BOTTOM);
        }
        let mut acc = ConditionStore::TOP;
        for &term in terms {
            acc = self.and_counting(acc, term, hits)?;
        }
        Some(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unbounded() -> DnfBudget {
        DnfBudget::unbounded()
    }

    #[test]
    fn seeds_are_canonical() {
        let store = ConditionStore::new();
        assert!(store.is_bottom(ConditionStore::BOTTOM));
        assert!(store.is_top(ConditionStore::TOP));
        assert_eq!(store.implicant_count(), 0);
        assert_eq!(store.dnf_count(), 0);
        assert_eq!(store.extract(ConditionStore::BOTTOM), Dnf::bottom());
        assert_eq!(store.extract(ConditionStore::TOP), Dnf::top());
    }

    #[test]
    fn interning_is_idempotent_and_charges_once() {
        let mut store = ConditionStore::new();
        let budget = DnfBudget::new(10);
        let a1 = store.atom(7, &budget).unwrap();
        let a2 = store.atom(7, &budget).unwrap();
        assert_eq!(a1, a2);
        assert_eq!(store.implicant_count(), 1);
        assert_eq!(budget.charged(), 1);
    }

    #[test]
    fn products_match_the_legacy_representation() {
        let mut store = ConditionStore::new();
        let budget = unbounded();
        let a = store.atom(1, &budget).unwrap();
        let b = store.atom(2, &budget).unwrap();
        let c = store.atom(3, &budget).unwrap();
        let ab = store.or(a, b);
        let ac = store.and(a, c, &budget).unwrap();
        let dist = store.and(ab, c, &budget).unwrap();
        let legacy = Dnf::atom(1).or(&Dnf::atom(2)).and(&Dnf::atom(3));
        assert_eq!(store.extract(dist), legacy);
        assert_eq!(store.extract(ac), Dnf::atom(1).and(&Dnf::atom(3)));
        // Canonicity: recomputing through a different shape returns the same id.
        let bc = store.and(b, c, &budget).unwrap();
        let dist2 = store.or(ac, bc);
        assert_eq!(dist, dist2);
    }

    #[test]
    fn absorption_is_incremental_and_minimal() {
        let mut store = ConditionStore::new();
        let budget = unbounded();
        let a = store.atom(1, &budget).unwrap();
        let b = store.atom(2, &budget).unwrap();
        let ab = store.and(a, b, &budget).unwrap();
        // a ∨ (a ∧ b) absorbs to a.
        assert_eq!(store.or(a, ab), a);
        // (a ∨ b) ∧ a absorbs to a.
        let aorb = store.or(a, b);
        assert_eq!(store.and(aorb, a, &budget).unwrap(), a);
    }

    #[test]
    fn memo_hits_are_counted() {
        let mut store = ConditionStore::new();
        let budget = unbounded();
        let a = store.atom(1, &budget).unwrap();
        let b = store.atom(2, &budget).unwrap();
        let first = store.and(a, b, &budget).unwrap();
        let misses = store.stats().memo_misses;
        let second = store.and(b, a, &budget).unwrap();
        assert_eq!(first, second, "∧ is commutative through the normalized memo key");
        assert_eq!(store.stats().memo_misses, misses, "second product must not recompute");
        assert!(store.stats().memo_hits >= 1);
    }

    #[test]
    fn frozen_views_answer_only_from_memo() {
        let mut store = ConditionStore::new();
        let budget = unbounded();
        let a = store.atom(1, &budget).unwrap();
        let b = store.atom(2, &budget).unwrap();
        assert_eq!(store.frozen().and(a, b), None, "unmemoized product must defer");
        let ab = store.and(a, b, &budget).unwrap();
        assert_eq!(store.frozen().and(a, b), Some(ab));
        assert_eq!(store.frozen().and(b, a), Some(ab), "frozen lookups normalize the key too");
        // Identities answer without memo.
        assert_eq!(store.frozen().and(ConditionStore::TOP, a), Some(a));
        assert_eq!(store.frozen().or(ConditionStore::BOTTOM, b), Some(b));
        assert_eq!(
            store.frozen().all(&[a, ConditionStore::BOTTOM, b]),
            Some(ConditionStore::BOTTOM)
        );
    }

    #[test]
    fn budget_charges_distinct_implicants_only() {
        let mut store = ConditionStore::new();
        let budget = DnfBudget::new(3);
        let a = store.atom(1, &budget).unwrap();
        let b = store.atom(2, &budget).unwrap();
        // Product ab is the third distinct implicant: exactly at the limit.
        let ab = store.and(a, b, &budget).unwrap();
        assert_eq!(store.extract(ab), Dnf::atom(1).and(&Dnf::atom(2)));
        assert_eq!(budget.charged(), 3);
        assert!(!budget.tripped());
        // Recomputing (memo hit) and re-interning charge nothing further.
        assert_eq!(store.and(b, a, &budget), Some(ab));
        assert_eq!(store.atom(1, &budget), Some(a));
        assert_eq!(budget.charged(), 3);
        // One genuinely new implicant beyond the limit trips the cell.
        assert_eq!(store.atom(9, &budget), None);
        assert!(budget.tripped());
        assert_eq!(budget.exhaustion(), Some(crate::pool::Exhaustion::Implicants));
        // A tripped cell rejects even previously interned work.
        assert_eq!(store.all(&[a, b], &budget), None);
    }

    #[test]
    fn extraction_round_trips_interning() {
        let legacy =
            Dnf::atom(1).or(&Dnf::atom(2).and(&Dnf::atom(3))).or(&Dnf::atom(4).and(&Dnf::atom(5)));
        let mut store = ConditionStore::new();
        let budget = unbounded();
        let id = store.intern_dnf(&legacy, &budget).unwrap();
        assert_eq!(store.extract(id), legacy);
        let view = store.dnf(id);
        assert_eq!(view.implicant_count(), legacy.implicant_count());
        assert_eq!(view.to_dnf(), legacy);
        assert!(view.eval(&|atom| atom == 1));
        assert!(!view.eval(&|atom| atom == 2));
    }
}
