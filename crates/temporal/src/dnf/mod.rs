//! Positive disjunctive normal forms over edge atoms.
//!
//! Algorithm B manipulates *conditions*: monotone Boolean combinations of the
//! atoms "□¬prop(e)" for edges `e` of the tableau graph.  A monotone Boolean
//! function has a unique minimal DNF (its prime implicants), so representing
//! conditions as antichains of implicant sets gives a canonical form that
//! makes the fixpoint convergence test a pure equality check.
//!
//! The module carries **two representations** of that canonical form:
//!
//! * [`Dnf`] — the explicit `BTreeSet<BTreeSet<usize>>` value type.  Simple,
//!   self-contained, and the *differential baseline*: every interned
//!   operation is property-tested against it, and
//!   [`Dnf::all_bounded_estimated`] preserves the PR 3 estimate-cut product
//!   for benchmark comparison.
//! * [`store::ConditionStore`] — the interned arena the engines actually run
//!   on.  Implicants are hash-consed to `Copy` [`store::ImplicantId`]s
//!   (each distinct atom set stored once), whole antichains to
//!   [`store::DnfId`]s (equality = id equality), `∧`/`∨` products are
//!   memoized per `(DnfId, DnfId)` pair, and absorption is an incremental
//!   bitset-probe insert that never materializes the pre-absorption product.
//!   See the [`store`] module documentation for the design and the
//!   frozen-sweep concurrency discipline.
//!
//! Canonicity also carries the concurrency story: because `∧`/`∨` results do
//! not depend on evaluation or association order, the Appendix B §5.3
//! fixpoint can batch whole sweeps of condition products across the
//! [`crate::pool`] workers and still produce the sequential answer — and the
//! semi-naive worklist engine of [`crate::algorithm_b`] leans on the same
//! canonicity in the other direction: an equation whose input ids did not
//! change replays to the id it already has, so skipping it (and the whole
//! verification round of a converged component) is invisible to the store.  The
//! historical flip side was cost — on the nested weak-until translations of
//! interval formulas (the measured `[ => Q ] []P` family) the pre-absorption
//! products grow combinatorially over thousands of edge atoms, which is
//! exactly the duplication the interned store collapses.  [`Dnf::all_bounded`]
//! routes through the store, and the shared [`DnfBudget`] cell now charges
//! **distinct interned implicants** ([`DnfBudget::charge`]): re-deriving a
//! known implicant is free, the first computation to push the distinct count
//! past the cap trips the cell, and the whole (possibly parallel) computation
//! cuts over to an honest "unknown" instead of stalling.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::pool::{Exhaustion, ResourceBudget};

pub mod store;

/// The widest a *minimal* DNF over `atoms` edge atoms can possibly be,
/// saturating at `u64::MAX`.
///
/// A minimal DNF is an antichain of implicant sets, and by Sperner's theorem
/// the largest antichain over an `atoms`-element set has
/// `C(atoms, ⌊atoms/2⌋)` members.  This is the width hook behind the
/// `ilogic-core` cost estimator: it clamps structural width predictions to
/// what an antichain can mathematically reach without running any condition
/// computation (the bound saturates past 67 atoms — by then the width is
/// astronomically beyond any practical implicant budget anyway).
pub fn antichain_width_bound(atoms: usize) -> u64 {
    let n = atoms as u64;
    let k = n / 2;
    // C(n, k) built incrementally: multiply before divide keeps the running
    // value integral; checked ops saturate the whole bound on overflow.
    let mut result: u64 = 1;
    for i in 1..=k {
        let Some(scaled) = result.checked_mul(n - k + i) else {
            return u64::MAX;
        };
        result = scaled / i;
    }
    result
}

/// A shared, atomic implicant budget for a (possibly parallel) batch of DNF
/// computations.
///
/// One cell is created per [`crate::algorithm_b`] condition computation and
/// shared by every equation evaluated on every worker: the first computation
/// to exceed the budget [`DnfBudget::trip`]s the cell, and every other
/// in-flight [`Dnf::all_bounded`] aborts at its next fold step.  Because a
/// trip means the whole computation's answer is already `None`, the early
/// aborts never change an answer — they only stop workers from burning CPU on
/// a batch whose result is doomed — so budgeted answers are identical at
/// every worker count.
///
/// A cell built from a [`ResourceBudget`] ([`DnfBudget::from_budget`]) also
/// carries the budget's wall-clock deadline and cancellation token:
/// [`Dnf::all_bounded`] polls them on entry and trips the cell with
/// [`Exhaustion::Deadline`] / [`Exhaustion::Cancelled`], so a runaway
/// fixpoint honours the same cutoffs as every other engine.  The reason the
/// cell tripped is recorded and exposed by [`DnfBudget::exhaustion`].
#[derive(Debug)]
pub struct DnfBudget {
    limit: usize,
    /// The originating budget, consulted only for its timing cutoffs
    /// ([`ResourceBudget::interrupted`] — one implementation of the
    /// cancel-then-deadline priority for every engine); `None` for the
    /// cap-only constructors.
    timing: Option<ResourceBudget>,
    /// Distinct implicants charged so far ([`DnfBudget::charge`]).
    charged: AtomicUsize,
    tripped: AtomicBool,
    /// The first recorded trip reason ([`OnceLock`]: later [`trip_with`]
    /// calls lose the `set` race and their reason is dropped — pinned by the
    /// `first_trip_reason_wins_under_concurrent_trips` regression test).
    ///
    /// [`trip_with`]: DnfBudget::trip_with
    reason: OnceLock<Exhaustion>,
}

impl DnfBudget {
    /// A budget allowing at most `limit` *distinct* implicants across every
    /// computation sharing this cell (see [`DnfBudget::charge`]).
    pub fn new(limit: usize) -> DnfBudget {
        DnfBudget {
            limit,
            timing: None,
            charged: AtomicUsize::new(0),
            tripped: AtomicBool::new(false),
            reason: OnceLock::new(),
        }
    }

    /// A cell enforcing `budget`'s implicant cap, deadline, and cancellation
    /// token.
    pub fn from_budget(budget: &ResourceBudget) -> DnfBudget {
        DnfBudget {
            limit: budget.max_implicants(),
            timing: Some(budget.clone()),
            charged: AtomicUsize::new(0),
            tripped: AtomicBool::new(false),
            reason: OnceLock::new(),
        }
    }

    /// No budget: computations run to completion however large they get.
    pub fn unbounded() -> DnfBudget {
        DnfBudget::new(usize::MAX)
    }

    /// The implicant cap.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// `true` when the implicant cap has no effect (the timing cutoffs, if
    /// any, still apply).
    pub fn is_unbounded(&self) -> bool {
        self.limit == usize::MAX
    }

    /// Charges `new_implicants` freshly interned implicants to the cell;
    /// `false` when the running total exceeds [`DnfBudget::limit`] (the cell
    /// is then tripped with [`Exhaustion::Implicants`]) or the cell was
    /// already tripped.
    ///
    /// The [`store::ConditionStore`] calls this exactly once per *distinct*
    /// implicant — duplicates are interning hits and charge nothing — so the
    /// cap bounds the size of the condition space explored, not the number of
    /// operations.  The total charged is a commutative sum over sharers,
    /// which keeps the trip/no-trip outcome independent of evaluation order
    /// (and hence of the worker count) for any fixed set of computations.
    pub fn charge(&self, new_implicants: usize) -> bool {
        if self.tripped() {
            return false;
        }
        if self.limit == usize::MAX {
            return true;
        }
        let total = self.charged.fetch_add(new_implicants, Ordering::Relaxed) + new_implicants;
        if total > self.limit {
            self.trip();
            return false;
        }
        true
    }

    /// Distinct implicants charged so far.
    pub fn charged(&self) -> usize {
        self.charged.load(Ordering::Relaxed)
    }

    /// Marks the budget as exhausted by the implicant cap, telling every
    /// sharer to abort.
    pub fn trip(&self) {
        self.trip_with(Exhaustion::Implicants);
    }

    /// Marks the budget as exhausted for `reason`; the first recorded reason
    /// wins.
    pub fn trip_with(&self, reason: Exhaustion) {
        let _ = self.reason.set(reason);
        self.tripped.store(true, Ordering::Release);
    }

    /// `true` once any sharer exceeded the budget.
    pub fn tripped(&self) -> bool {
        self.tripped.load(Ordering::Acquire)
    }

    /// Why the cell tripped, if it has.
    pub fn exhaustion(&self) -> Option<Exhaustion> {
        self.reason.get().copied()
    }

    /// Polls the timing cutoffs, tripping the cell if one fired; returns
    /// `true` when the cell is (now) tripped.
    pub(crate) fn poll_interrupts(&self) -> bool {
        if self.tripped() {
            return true;
        }
        if let Some(cut) = self.timing.as_ref().and_then(ResourceBudget::interrupted) {
            self.trip_with(cut);
            return true;
        }
        false
    }
}

/// A monotone condition in minimal disjunctive normal form.
///
/// An implicant is a set of edge identifiers, read as the conjunction of the
/// corresponding "□¬prop(e)" atoms; the condition is the disjunction of its
/// implicants.  The empty implicant is `true`; the empty set of implicants is
/// `false`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Dnf {
    implicants: BTreeSet<BTreeSet<usize>>,
}

impl Dnf {
    /// The condition `false`.
    pub fn bottom() -> Dnf {
        Dnf { implicants: BTreeSet::new() }
    }

    /// The condition `true`.
    pub fn top() -> Dnf {
        let mut implicants = BTreeSet::new();
        implicants.insert(BTreeSet::new());
        Dnf { implicants }
    }

    /// The condition consisting of the single atom `id`.
    pub fn atom(id: usize) -> Dnf {
        let mut implicant = BTreeSet::new();
        implicant.insert(id);
        let mut implicants = BTreeSet::new();
        implicants.insert(implicant);
        Dnf { implicants }
    }

    /// `true` if the condition is identically false.
    pub fn is_bottom(&self) -> bool {
        self.implicants.is_empty()
    }

    /// `true` if the condition is identically true.
    pub fn is_top(&self) -> bool {
        self.implicants.contains(&BTreeSet::new())
    }

    /// The implicants of the condition.
    pub fn implicants(&self) -> impl Iterator<Item = &BTreeSet<usize>> {
        self.implicants.iter()
    }

    /// The number of implicants.
    pub fn implicant_count(&self) -> usize {
        self.implicants.len()
    }

    /// Wraps an implicant set the caller guarantees is already a minimal
    /// antichain — the [`store::ConditionStore`] extraction path, where
    /// minimality is an interning invariant.
    pub(crate) fn from_implicants_unchecked(implicants: BTreeSet<BTreeSet<usize>>) -> Dnf {
        debug_assert!(
            implicants
                .iter()
                .all(|imp| !implicants.iter().any(|other| other != imp && other.is_subset(imp))),
            "store extraction must hand over a minimal antichain"
        );
        Dnf { implicants }
    }

    /// Removes implicants that are supersets of other implicants (absorption).
    fn absorb(mut implicants: BTreeSet<BTreeSet<usize>>) -> Dnf {
        let list: Vec<BTreeSet<usize>> = implicants.iter().cloned().collect();
        implicants.retain(|imp| !list.iter().any(|other| other != imp && other.is_subset(imp)));
        Dnf { implicants }
    }

    /// Disjunction of two conditions.
    pub fn or(&self, other: &Dnf) -> Dnf {
        if self.is_top() || other.is_top() {
            return Dnf::top();
        }
        let mut implicants = self.implicants.clone();
        implicants.extend(other.implicants.iter().cloned());
        Dnf::absorb(implicants)
    }

    /// Conjunction of two conditions.
    pub fn and(&self, other: &Dnf) -> Dnf {
        if self.is_bottom() || other.is_bottom() {
            return Dnf::bottom();
        }
        let mut implicants = BTreeSet::new();
        for a in &self.implicants {
            for b in &other.implicants {
                let mut joined = a.clone();
                joined.extend(b.iter().copied());
                implicants.insert(joined);
            }
        }
        Dnf::absorb(implicants)
    }

    /// Disjunction of an iterator of conditions.
    pub fn any<I: IntoIterator<Item = Dnf>>(items: I) -> Dnf {
        items.into_iter().fold(Dnf::bottom(), |acc, d| acc.or(&d))
    }

    /// Conjunction of an iterator of conditions.
    pub fn all<I: IntoIterator<Item = Dnf>>(items: I) -> Dnf {
        items.into_iter().fold(Dnf::top(), |acc, d| acc.and(&d))
    }

    /// Conjunction of DNF terms under a shared budget, computed through a
    /// fresh [`store::ConditionStore`]: `None` when the number of *distinct*
    /// implicants explored (term implicants plus every product implicant,
    /// each counted once however often it recurs) exceeds
    /// [`DnfBudget::limit`], or when another sharer of `budget` has already
    /// tripped it.
    ///
    /// This replaces the PR 3 pre-absorption estimate cut (kept as
    /// [`Dnf::all_bounded_estimated`] for differential benchmarks), which
    /// tripped on `Π |termᵢ|` even when absorption would have collapsed the
    /// product to a handful of implicants — the measured failure mode of the
    /// `[ => Q ] []P` condition fixpoint.  Charging distinct implicants lets
    /// heavily-absorbing products complete under modest budgets while still
    /// cutting a genuinely exploding computation off deterministically.
    /// The per-call distinct count is a function of the term multiset alone
    /// (interning dedups whatever the arrival order), so the `Some`/`None`
    /// answer does not depend on evaluation or association order; this is
    /// what lets a parallel fixpoint sweep batch these products across
    /// workers and still answer exactly like the sequential sweep.
    pub fn all_bounded(terms: Vec<Dnf>, budget: &DnfBudget) -> Option<Dnf> {
        if budget.poll_interrupts() {
            // Another sharer already blew the budget (or the deadline or
            // cancel token fired): the batch's answer is `None` regardless of
            // this product, so don't bother computing it.
            return None;
        }
        if terms.iter().any(Dnf::is_bottom) {
            // The product is ⊥ whatever the other terms hold; charging their
            // implicants would be pure noise.
            return Some(Dnf::bottom());
        }
        let mut store = store::ConditionStore::new();
        let mut ids = Vec::with_capacity(terms.len());
        for term in &terms {
            ids.push(store.intern_dnf(term, budget)?);
        }
        let result = store.all(&ids, budget)?;
        Some(store.extract(result))
    }

    /// The PR 3 implementation of [`Dnf::all_bounded`]: `None` when the
    /// pre-absorption product estimate `Π max(1, |termᵢ|)` exceeds
    /// [`DnfBudget::limit`].
    ///
    /// Kept as the *baseline* the interned path is benchmarked and
    /// property-tested against.  The estimate is a sound but badly
    /// conservative cut: it bounds every intermediate and final implicant
    /// count, so an accepted estimate caps the computation's cost — but it
    /// also trips on products absorption would have collapsed, which is what
    /// made the nested weak-until condition fixpoints answer `Unknown` at
    /// every budget from 10⁴ to 10⁷ implicants.
    pub fn all_bounded_estimated(terms: Vec<Dnf>, budget: &DnfBudget) -> Option<Dnf> {
        if budget.poll_interrupts() {
            return None;
        }
        if !budget.is_unbounded() {
            let estimate = terms.iter().try_fold(1usize, |acc, term| {
                acc.checked_mul(term.implicant_count().max(1)).filter(|&est| est <= budget.limit())
            });
            if estimate.is_none() {
                budget.trip();
                return None;
            }
        }
        let mut acc = Dnf::top();
        for term in &terms {
            if budget.tripped() {
                return None;
            }
            acc = acc.and(term);
        }
        debug_assert!(
            budget.is_unbounded() || acc.implicant_count() <= budget.limit(),
            "a canonical product can never exceed its accepted pre-absorption estimate"
        );
        Some(acc)
    }

    /// Evaluates the condition under an assignment of atoms to Booleans.
    pub fn eval(&self, assignment: &dyn Fn(usize) -> bool) -> bool {
        self.implicants.iter().any(|imp| imp.iter().all(|&id| assignment(id)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_behave() {
        assert!(Dnf::bottom().is_bottom());
        assert!(Dnf::top().is_top());
        assert!(!Dnf::atom(1).is_bottom());
        assert!(!Dnf::atom(1).is_top());
    }

    #[test]
    fn lattice_laws() {
        let a = Dnf::atom(1);
        let b = Dnf::atom(2);
        assert_eq!(a.or(&Dnf::bottom()), a);
        assert_eq!(a.and(&Dnf::top()), a);
        assert_eq!(a.and(&Dnf::bottom()), Dnf::bottom());
        assert_eq!(a.or(&Dnf::top()), Dnf::top());
        assert_eq!(a.or(&b), b.or(&a));
        assert_eq!(a.and(&b), b.and(&a));
    }

    #[test]
    fn absorption_keeps_minimal_implicants() {
        // a ∨ (a ∧ b) = a
        let a = Dnf::atom(1);
        let ab = Dnf::atom(1).and(&Dnf::atom(2));
        assert_eq!(a.or(&ab), a);
        // (a ∨ b) ∧ a = a
        let aorb = Dnf::atom(1).or(&Dnf::atom(2));
        assert_eq!(aorb.and(&a), a);
    }

    #[test]
    fn distribution() {
        // (a ∨ b) ∧ c = (a∧c) ∨ (b∧c)
        let lhs = Dnf::atom(1).or(&Dnf::atom(2)).and(&Dnf::atom(3));
        let rhs = Dnf::atom(1).and(&Dnf::atom(3)).or(&Dnf::atom(2).and(&Dnf::atom(3)));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn eval_matches_structure() {
        let cond = Dnf::atom(1).and(&Dnf::atom(2)).or(&Dnf::atom(3));
        assert!(cond.eval(&|id| id == 3));
        assert!(cond.eval(&|id| id == 1 || id == 2));
        assert!(!cond.eval(&|id| id == 1));
        assert!(Dnf::top().eval(&|_| false));
        assert!(!Dnf::bottom().eval(&|_| true));
    }

    #[test]
    fn any_and_all_fold_correctly() {
        let items = vec![Dnf::atom(1), Dnf::atom(2)];
        assert_eq!(Dnf::any(items.clone()), Dnf::atom(1).or(&Dnf::atom(2)));
        assert_eq!(Dnf::all(items), Dnf::atom(1).and(&Dnf::atom(2)));
        assert_eq!(Dnf::any(Vec::new()), Dnf::bottom());
        assert_eq!(Dnf::all(Vec::new()), Dnf::top());
    }

    #[test]
    fn empty_conditions_under_a_budget() {
        // The empty conjunction is ⊤ even under the tightest budget (⊤ has
        // one — empty — implicant, within any limit ≥ 1).
        let budget = DnfBudget::new(1);
        assert_eq!(Dnf::all_bounded(Vec::new(), &budget), Some(Dnf::top()));
        assert!(!budget.tripped());
        // A conjunction with a ⊥ term collapses to ⊥ (zero implicants), which
        // also fits every budget; the max(1, ·) estimate must not zero out
        // the product.
        let with_bottom = vec![Dnf::atom(1), Dnf::bottom(), Dnf::atom(2)];
        assert_eq!(Dnf::all_bounded(with_bottom, &budget), Some(Dnf::bottom()));
        assert!(!budget.tripped());
    }

    #[test]
    fn absorption_inside_a_bounded_product() {
        // (a ∨ b) ∧ (a ∨ c) expands to a ∨ ac ∨ ab ∨ bc and absorbs to
        // a ∨ bc; the canonical result must match the unbudgeted fold.  The
        // distinct implicants *charged* are the three atoms plus the one
        // surviving product implicant bc — the ab/ac transients die inside
        // the raw product builder before interning — so a budget of 4 fits
        // exactly.
        let a_or_ab = Dnf::atom(1).or(&Dnf::atom(1).and(&Dnf::atom(2)));
        assert_eq!(a_or_ab, Dnf::atom(1), "absorption keeps the minimal implicant");
        let terms = vec![Dnf::atom(1).or(&Dnf::atom(2)), Dnf::atom(1).or(&Dnf::atom(3))];
        let unbudgeted = Dnf::all(terms.clone());
        let budget = DnfBudget::new(4);
        assert_eq!(Dnf::all_bounded(terms, &budget), Some(unbudgeted));
        assert_eq!(budget.charged(), 4);
        assert!(!budget.tripped());
    }

    #[test]
    fn budget_exhaustion_boundary() {
        // (a ∨ b) ∧ (c ∨ d): 4 atom implicants plus 4 distinct product
        // implicants = 8 distinct implicants explored, result 4 implicants.
        let terms = || vec![Dnf::atom(1).or(&Dnf::atom(2)), Dnf::atom(3).or(&Dnf::atom(4))];
        // Budget exactly at the boundary: allowed, cell untouched.
        let exact = DnfBudget::new(8);
        let result = Dnf::all_bounded(terms(), &exact).expect("charge == limit must pass");
        assert_eq!(result.implicant_count(), 4);
        assert_eq!(exact.charged(), 8);
        assert!(!exact.tripped());
        // One below: the last distinct product implicant trips the cell, and
        // the cell records it for every sharer.
        let tight = DnfBudget::new(7);
        assert_eq!(Dnf::all_bounded(terms(), &tight), None);
        assert!(tight.tripped());
        // A tripped cell rejects even trivially small follow-up work.
        assert_eq!(Dnf::all_bounded(vec![Dnf::atom(1)], &tight), None);
        // The unbounded budget never trips (and never counts).
        let unbounded = DnfBudget::unbounded();
        assert!(unbounded.is_unbounded());
        assert_eq!(Dnf::all_bounded(terms(), &unbounded), Some(result.clone()));
        assert!(!unbounded.tripped());
        // The estimate-cut baseline still trips on its pre-absorption
        // estimate: 2 × 2 = 4 > 3.
        let baseline = DnfBudget::new(3);
        assert_eq!(Dnf::all_bounded_estimated(terms(), &baseline), None);
        assert!(baseline.tripped());
        let baseline_fit = DnfBudget::new(4);
        assert_eq!(
            Dnf::all_bounded_estimated(terms(), &baseline_fit).as_ref(),
            Some(&result),
            "baseline and interned paths agree whenever neither trips"
        );
    }

    #[test]
    fn budgets_record_why_they_tripped() {
        use crate::pool::{CancelToken, Exhaustion, ResourceBudget};
        // Implicant-cap trip records Implicants.
        let tight = DnfBudget::new(1);
        let wide = vec![Dnf::atom(1).or(&Dnf::atom(2)), Dnf::atom(3).or(&Dnf::atom(4))];
        assert_eq!(Dnf::all_bounded(wide.clone(), &tight), None);
        assert_eq!(tight.exhaustion(), Some(Exhaustion::Implicants));
        // The first recorded reason wins.
        tight.trip_with(Exhaustion::Deadline);
        assert_eq!(tight.exhaustion(), Some(Exhaustion::Implicants));
        // A cancelled token trips the cell before any product is expanded.
        let token = CancelToken::new();
        token.cancel();
        let cancelled =
            DnfBudget::from_budget(&ResourceBudget::unbounded().with_cancel(token.clone()));
        assert!(cancelled.is_unbounded());
        assert_eq!(Dnf::all_bounded(vec![Dnf::atom(1)], &cancelled), None);
        assert_eq!(cancelled.exhaustion(), Some(Exhaustion::Cancelled));
        // An expired deadline does the same.
        let expired = DnfBudget::from_budget(
            &ResourceBudget::unbounded().with_timeout(std::time::Duration::ZERO),
        );
        assert_eq!(Dnf::all_bounded(vec![Dnf::atom(1)], &expired), None);
        assert_eq!(expired.exhaustion(), Some(Exhaustion::Deadline));
        // An untripped cell reports nothing.
        assert_eq!(DnfBudget::unbounded().exhaustion(), None);
    }

    #[test]
    fn canonical_inputs_keep_charges_tight() {
        // Terms are canonical *before* the product: `a ∨ ab` absorbs to `a`
        // at construction, so interning it charges a single distinct
        // implicant and the conjunction fits the tightest budget.
        let terms = vec![Dnf::atom(1).or(&Dnf::atom(1).and(&Dnf::atom(2)))];
        let budget = DnfBudget::new(1);
        assert_eq!(Dnf::all_bounded(terms, &budget), Some(Dnf::atom(1)));
        assert_eq!(budget.charged(), 1);
        assert!(!budget.tripped());
    }

    #[test]
    fn first_trip_reason_wins_under_concurrent_trips() {
        // The trip reason is a `OnceLock`: later trips lose the `set` race
        // and are dropped.  This is the contract `CheckStats` and the JSON
        // reports rely on — one stable exhaustion reason per computation —
        // and it must survive representation rewrites, so pin it both
        // sequentially and under a real multi-thread race.
        use crate::pool::{Parallelism, WorkerPool};
        let cell = DnfBudget::new(0);
        cell.trip_with(Exhaustion::Implicants);
        let pool = WorkerPool::new(Parallelism::Fixed(4));
        pool.run(|_| {
            for _ in 0..100 {
                cell.trip_with(Exhaustion::Deadline);
                cell.trip_with(Exhaustion::Cancelled);
            }
        });
        assert!(cell.tripped());
        assert_eq!(cell.exhaustion(), Some(Exhaustion::Implicants), "first recorded reason wins");
        // A purely concurrent race records exactly one of the raced reasons.
        let raced = DnfBudget::new(0);
        let reasons = [Exhaustion::Implicants, Exhaustion::Deadline, Exhaustion::Cancelled];
        pool.run(|w| raced.trip_with(reasons[w % reasons.len()]));
        assert!(raced.tripped());
        let winner = raced.exhaustion().expect("a raced trip must record a reason");
        assert!(reasons.contains(&winner));
    }
}
