//! A scoped worker pool for the sharded checking engines.
//!
//! The bounded validity search is a conjunction over independently enumerable
//! computations, explore-mode checking is independent per run, spec checking
//! is independent per clause, tableau frontier expansion is independent per
//! node, and the Appendix B §5.3 condition fixpoint evaluates a sweep of
//! equations from one frozen snapshot — all embarrassingly parallel.  This
//! module provides the (deliberately small) machinery those parallel paths
//! share.  It lives in `ilogic-temporal`, the lowest crate of the workspace,
//! so that every layer — [`crate::tableau`] and [`crate::algorithm_b`] here,
//! `ilogic_core::session` / `ilogic_core::bounded` (which re-export this
//! module as `ilogic_core::pool`, the path most callers use),
//! `ilogic_lowlevel::decide`, and `ilogic_systems::explore` — fans out over
//! the same machinery:
//!
//! * [`Parallelism`] — the user-facing knob ([`Parallelism::Auto`] /
//!   [`Parallelism::Fixed`] / [`Parallelism::Off`]), with an environment
//!   override (`ILOGIC_TEST_PARALLEL`) so whole test suites can be swept onto
//!   the pool without touching call sites;
//! * [`WorkerPool`] — a scoped fork/join pool over [`std::thread`].  Workers
//!   borrow from the caller's stack (arena snapshots, traces, models), run one
//!   closure per worker index, and are joined before `run` returns, so there
//!   is no lifetime laundering and no idle thread kept around;
//! * [`Earliest`] — a lock-free "lowest index wins" cancellation cell.  A
//!   plain `AtomicBool` stop flag would make counterexample selection racy
//!   (whichever shard set it first would win); publishing the lowest global
//!   index found so far lets every shard stop as soon as it can no longer
//!   improve the answer while keeping verdicts bit-identical to the
//!   sequential sweep;
//! * [`ResourceBudget`] / [`CancelToken`] / [`Exhaustion`] — the unified
//!   resource-control surface every budgeted engine shares: structural caps
//!   (nodes, edges, implicants, enumerated computations) plus a wall-clock
//!   deadline and a cooperative cancellation token, reported uniformly as an
//!   [`Exhaustion`] value.  It lives here for the same reason the pool does:
//!   every layer above (tableau, condition fixpoint, bounded sweep, low-level
//!   pipeline, session scheduler) enforces the same budget type.
//!
//! The pool uses `std::thread::scope` — no external dependencies — and spawns
//! workers per call.  The checks this repository runs are coarse (milliseconds
//! to minutes per shard), so thread spawn cost is noise; a persistent pool
//! with channels would buy nothing but complexity.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many workers a check fans out across.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Parallelism {
    /// One worker per available hardware thread
    /// ([`std::thread::available_parallelism`]).
    Auto,
    /// Exactly this many workers (clamped to at least 1).
    Fixed(usize),
    /// Single-threaded: the check runs inline on the calling thread.
    #[default]
    Off,
}

/// Environment variable consulted by [`Parallelism::from_env`]; setting it to
/// `1`/`auto` forces [`Parallelism::Auto`], to `n > 1` forces
/// [`Parallelism::Fixed`]`(n)`.  Used by CI to sweep the whole test suite
/// through the parallel engine without editing every request.
pub const PARALLELISM_ENV: &str = "ILOGIC_TEST_PARALLEL";

impl Parallelism {
    /// The number of workers this setting resolves to (always ≥ 1).
    pub fn workers(self) -> usize {
        match self {
            Parallelism::Auto => std::thread::available_parallelism().map_or(1, usize::from),
            Parallelism::Fixed(n) => n.max(1),
            Parallelism::Off => 1,
        }
    }

    /// The parallelism forced by the [`PARALLELISM_ENV`] environment
    /// variable, if set: `1`, `true` or `auto` mean [`Parallelism::Auto`];
    /// any other number means [`Parallelism::Fixed`] of that many workers;
    /// `0`, `off` or `false` mean [`Parallelism::Off`]; unset or empty means
    /// no override.
    ///
    /// A set-but-unintelligible value (say `ILOGIC_TEST_PARALLEL=fuor` in a
    /// CI matrix) is treated as no override, but warns once on stderr — a
    /// typo'd parallel sweep must not silently masquerade as a sequential
    /// run.
    pub fn from_env() -> Option<Parallelism> {
        let raw = std::env::var(PARALLELISM_ENV).ok()?;
        match Parallelism::parse(&raw) {
            Ok(parallelism) => parallelism,
            Err(message) => {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| eprintln!("warning: {message}; ignoring the override"));
                None
            }
        }
    }

    /// Parses a [`PARALLELISM_ENV`] override value.
    ///
    /// `Ok(None)` means "no override" (empty/whitespace value); `Err` carries
    /// a human-readable description of a malformed value.
    pub fn parse(raw: &str) -> Result<Option<Parallelism>, String> {
        match raw.trim().to_ascii_lowercase().as_str() {
            "" => Ok(None),
            "1" | "true" | "auto" | "on" => Ok(Some(Parallelism::Auto)),
            "0" | "false" | "off" => Ok(Some(Parallelism::Off)),
            other => match other.parse::<usize>() {
                Ok(n) => Ok(Some(Parallelism::Fixed(n))),
                Err(_) => Err(format!(
                    "{PARALLELISM_ENV}={raw:?} is not a worker count (expected a number, \
                     `auto`, or `off`)"
                )),
            },
        }
    }
}

/// A scoped fork/join worker pool.
///
/// [`WorkerPool::run`] executes one job instance per worker index and returns
/// the results in worker order.  With a single worker the job runs inline on
/// the calling thread — `Parallelism::Off` costs nothing over a plain call.
#[derive(Clone, Copy, Debug)]
pub struct WorkerPool {
    workers: usize,
}

impl WorkerPool {
    /// A pool with the worker count resolved from `parallelism`.
    pub fn new(parallelism: Parallelism) -> WorkerPool {
        WorkerPool { workers: parallelism.workers() }
    }

    /// Number of workers `run` fans out across.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `job(worker_index)` once per worker (indices `0..workers()`),
    /// concurrently, and collects the results in worker order.
    ///
    /// The closure may borrow from the caller's stack — workers are scoped and
    /// joined before this returns.  A panicking worker propagates its panic to
    /// the caller after the remaining workers have been joined.
    pub fn run<T, F>(&self, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.run_over(vec![(); self.workers], |w, _| job(w))
            .into_iter()
            .map(|(result, ())| result)
            .collect()
    }

    /// Ordered parallel map: evaluates `f(0..count)` with the indices striped
    /// across the workers (worker `w` takes `w`, `w + n`, …) and returns the
    /// results in index order — the canonical "stripe and merge" idiom shared
    /// by the tableau level expander, the condition-fixpoint sweeps, and the
    /// low-level pipeline's deletion masks.
    ///
    /// `f` must be a pure function of the index (every caller here passes
    /// one), which makes the output — element for element — identical to the
    /// sequential `(0..count).map(f)` at any worker count.
    ///
    /// Small batches run inline: below [`MAP_INLINE_PER_WORKER`] items per
    /// worker the per-call `std::thread` spawn/join (~tens of µs) would
    /// dominate fine-grained work, and iterated callers (fixpoint sweeps run
    /// hundreds of times) would pay it every call.  Inline and striped
    /// evaluation produce the same vector, so the cutover is invisible to
    /// callers.
    pub fn map<T, F>(&self, count: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.workers == 1 || count < self.workers * MAP_INLINE_PER_WORKER {
            return (0..count).map(f).collect();
        }
        let striped =
            self.run(|w| (w..count).step_by(self.workers).map(|i| (i, f(i))).collect::<Vec<_>>());
        let mut results: Vec<Option<T>> = (0..count).map(|_| None).collect();
        for (i, result) in striped.into_iter().flatten() {
            results[i] = Some(result);
        }
        results
            .into_iter()
            .map(|slot| slot.expect("stripes cover every index exactly once"))
            .collect()
    }

    /// [`WorkerPool::map`] over a *sparse* index set: evaluates `f(i)` for
    /// each `i` in `indices` (striped across the workers by list position)
    /// and returns the results in list order — the fan-out primitive of the
    /// semi-naive condition fixpoint, whose per-round ready set is a small,
    /// changing subset of the equation universe.
    ///
    /// Like [`WorkerPool::map`], `f` must be a pure function of the index, so
    /// the output is — element for element — identical to the sequential
    /// `indices.iter().map(|&i| f(i))` at any worker count, and small ready
    /// sets run inline under the same [`MAP_INLINE_PER_WORKER`] threshold.
    pub fn map_indexed<T, F>(&self, indices: &[usize], f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.workers == 1 || indices.len() < self.workers * MAP_INLINE_PER_WORKER {
            return indices.iter().map(|&i| f(i)).collect();
        }
        let striped = self.run(|w| {
            (w..indices.len())
                .step_by(self.workers)
                .map(|pos| (pos, f(indices[pos])))
                .collect::<Vec<_>>()
        });
        let mut results: Vec<Option<T>> = (0..indices.len()).map(|_| None).collect();
        for (pos, result) in striped.into_iter().flatten() {
            results[pos] = Some(result);
        }
        results
            .into_iter()
            .map(|slot| slot.expect("stripes cover every position exactly once"))
            .collect()
    }

    /// Deterministic lowest-index-wins search over the indices
    /// `offset .. offset + items`: worker `w` visits `offset + w`,
    /// `offset + w + n`, … in increasing order, mutating its entry of
    /// `states`; the first `Some` stops that worker, an [`Earliest`] cell
    /// lets every worker stop once its next index can no longer beat the
    /// published best, and the find with the lowest index wins
    /// ([`min_find`]) — exactly the find a sequential scan of the same range
    /// would return first.
    ///
    /// `states` must hold one entry per worker; it is moved in and handed
    /// back (in worker order) so callers searching in rounds — e.g. batches
    /// pulled from a lazy producer — keep per-worker caches and allocations
    /// alive across calls.
    ///
    /// # Panics
    ///
    /// Panics if `states.len() != self.workers()`.
    pub fn search<St, T, Visit>(
        &self,
        items: usize,
        offset: usize,
        states: Vec<St>,
        visit: Visit,
    ) -> (Option<(usize, T)>, Vec<St>)
    where
        St: Send,
        T: Send,
        Visit: Fn(&mut St, usize) -> Option<T> + Sync,
    {
        assert_eq!(states.len(), self.workers, "one worker state per worker");
        let earliest = Earliest::new();
        let results = self.run_over(states, |w, state| {
            let mut found = None;
            let mut index = offset + w;
            while index < offset + items {
                if index >= earliest.bound() {
                    break;
                }
                if let Some(witness) = visit(state, index) {
                    earliest.record(index);
                    found = Some((index, witness));
                    break;
                }
                index += self.workers;
            }
            found
        });
        let mut finds = Vec::with_capacity(results.len());
        let mut states = Vec::with_capacity(results.len());
        for (found, state) in results {
            finds.push(found);
            states.push(state);
        }
        (min_find(finds), states)
    }

    /// [`WorkerPool::run`] with owned per-worker state: worker `w` receives
    /// `&mut states[w]`, and each state is handed back alongside the job's
    /// result in worker order.
    fn run_over<St, T, F>(&self, mut states: Vec<St>, job: F) -> Vec<(T, St)>
    where
        St: Send,
        T: Send,
        F: Fn(usize, &mut St) -> T + Sync,
    {
        if self.workers == 1 {
            let mut state = states.pop().expect("one worker state per worker");
            let result = job(0, &mut state);
            return vec![(result, state)];
        }
        std::thread::scope(|scope| {
            let job = &job;
            let handles: Vec<_> = states
                .into_iter()
                .enumerate()
                .map(|(w, mut state)| {
                    scope.spawn(move || {
                        let result = job(w, &mut state);
                        (result, state)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| {
                    handle.join().unwrap_or_else(|panic| std::panic::resume_unwind(panic))
                })
                .collect()
        })
    }
}

/// Minimum items *per worker* below which [`WorkerPool::map`] runs inline
/// instead of spawning scoped threads.  The work this repository maps is
/// coarse (tableau node expansions, DNF fixpoint equations, per-edge theory
/// checks on big graphs), so a small multiple of the worker count is enough
/// to keep spawn/join cost in the noise while still fanning out every batch
/// that can plausibly profit.
pub const MAP_INLINE_PER_WORKER: usize = 4;

/// The deterministic join of a sharded search: among the per-worker finds,
/// the one with the lowest index — the find a sequential sweep would have
/// produced first.  Shared by every parallel engine so the tie-break lives in
/// exactly one place.
pub fn min_find<T>(finds: impl IntoIterator<Item = Option<(usize, T)>>) -> Option<(usize, T)> {
    let mut best: Option<(usize, T)> = None;
    for find in finds.into_iter().flatten() {
        match &best {
            Some((index, _)) if *index <= find.0 => {}
            _ => best = Some(find),
        }
    }
    best
}

/// A lock-free "earliest find wins" cell for deterministic parallel search.
///
/// Shards publish the global enumeration index of each counterexample they
/// find; [`Earliest::bound`] is then an upper bound on the index any shard
/// still needs to examine.  Because the bound only ever decreases, a shard
/// that stops once its next index reaches the bound can never skip a
/// counterexample earlier than the published one — so taking the minimum over
/// all shards at join yields exactly the counterexample the sequential sweep
/// would have returned first.
#[derive(Debug, Default)]
pub struct Earliest {
    best: AtomicUsize,
}

impl Earliest {
    /// A cell with no find recorded (bound = `usize::MAX`).
    pub fn new() -> Earliest {
        Earliest { best: AtomicUsize::new(usize::MAX) }
    }

    /// Records a find at `index`, lowering the bound if it improves it.
    pub fn record(&self, index: usize) {
        self.best.fetch_min(index, Ordering::Relaxed);
    }

    /// The lowest index recorded so far (`usize::MAX` if none): enumeration
    /// indices at or above this can no longer affect the result.
    pub fn bound(&self) -> usize {
        self.best.load(Ordering::Relaxed)
    }

    /// `true` once any find has been recorded.
    pub fn found(&self) -> bool {
        self.bound() != usize::MAX
    }
}

/// Which resource of a [`ResourceBudget`] ran out first.
///
/// Carried by `Verdict::Unknown { exhausted }` (and by the budgeted engine
/// entry points as the `Err` of their `Result`s) so every backend reports a
/// cutoff the same way instead of each layer inventing its own sentinel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Exhaustion {
    /// The graph-node cap ([`ResourceBudget::max_nodes`]) tripped — tableau
    /// nodes, or product states of the low-level search.
    Nodes,
    /// The graph-edge cap ([`ResourceBudget::max_edges`]) tripped.
    Edges,
    /// The DNF implicant cap ([`ResourceBudget::max_implicants`]) tripped in
    /// the Appendix B §5.3 condition fixpoint.
    Implicants,
    /// The enumeration cap ([`ResourceBudget::max_enumeration`]) tripped — a
    /// bounded sweep, refutation search, or selection check stopped before
    /// examining every candidate.  Also reported for a space too large to
    /// index in a machine word at all (e.g. a bounded sweep over 64+
    /// propositions), which no cap increase can cover.
    Enumeration,
    /// The wall-clock deadline ([`ResourceBudget::with_deadline`]) passed.
    Deadline,
    /// The cancellation token ([`ResourceBudget::with_cancel`]) fired.
    Cancelled,
}

impl std::fmt::Display for Exhaustion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Exhaustion::Nodes => "node budget exhausted",
            Exhaustion::Edges => "edge budget exhausted",
            Exhaustion::Implicants => "implicant budget exhausted",
            Exhaustion::Enumeration => "enumeration budget exhausted",
            Exhaustion::Deadline => "deadline passed",
            Exhaustion::Cancelled => "cancelled",
        })
    }
}

/// A cooperative cancellation token shared by every phase of (a batch of)
/// checks.
///
/// Cloning is cheap (an [`Arc`]); every clone observes the same flag.  The
/// engines poll the token at phase boundaries — per tableau level, per
/// fixpoint sweep, every few hundred enumerated computations — so
/// cancellation is prompt but never preemptive.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Fires the token: every budget sharing it reports
    /// [`Exhaustion::Cancelled`] at its next poll.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// `true` once [`CancelToken::cancel`] has been called (on any clone).
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// The single resource-control surface of every checking engine.
///
/// One budget covers all cutoff dimensions that used to be scattered across
/// the layers (per-type tableau and condition-fixpoint limit structs,
/// ad-hoc refutation caps in the session): structural
/// caps (`max_nodes`/`max_edges` for graphs, `max_implicants` for condition
/// DNFs, `max_enumeration` for model sweeps) plus a wall-clock deadline and a
/// cooperative [`CancelToken`].  Whichever trips first ends the work with the
/// matching [`Exhaustion`], which the session surfaces uniformly as
/// `Verdict::Unknown { exhausted }`.
///
/// # Determinism
///
/// The structural caps are functions of the work's *content*, so budgeted
/// answers under them are bit-identical at every worker count (the same
/// discipline the PR 2/3 engines established).  The deadline and the cancel
/// token are wall-clock/timing dependent by nature: they can only turn an
/// answer into `Unknown`, never flip a settled verdict, but *which* runs are
/// cut is not reproducible.  Leave them unset (the default) where
/// reproducibility matters.
#[derive(Clone, Debug)]
pub struct ResourceBudget {
    max_nodes: usize,
    max_edges: usize,
    max_implicants: usize,
    max_enumeration: usize,
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
}

impl Default for ResourceBudget {
    /// The service defaults: tableau caps of 20 000 nodes / 200 000 edges
    /// and 10 000 condition implicants (the pre-unification per-layer
    /// defaults), plus 2 000 000 enumerated computations —
    /// generalizing the cap that used to apply only to the `Decide`
    /// refutation sweep to *every* enumerating backend.  Bounded/Explore
    /// checks had no cap before unification: a sweep larger than the default
    /// cap now answers `Unknown { exhausted: Enumeration }` instead of
    /// running arbitrarily long; pass [`ResourceBudget::unbounded`] (or a
    /// larger `with_max_enumeration`) to restore the old run-to-completion
    /// behaviour.  No deadline, no cancel token.
    fn default() -> ResourceBudget {
        ResourceBudget {
            max_nodes: 20_000,
            max_edges: 200_000,
            max_implicants: 10_000,
            max_enumeration: 2_000_000,
            deadline: None,
            cancel: None,
        }
    }
}

impl ResourceBudget {
    /// The default budget; see [`ResourceBudget::default`].
    pub fn new() -> ResourceBudget {
        ResourceBudget::default()
    }

    /// No caps, no deadline, no token: every engine runs to completion
    /// however long that takes.
    pub fn unbounded() -> ResourceBudget {
        ResourceBudget {
            max_nodes: usize::MAX,
            max_edges: usize::MAX,
            max_implicants: usize::MAX,
            max_enumeration: usize::MAX,
            deadline: None,
            cancel: None,
        }
    }

    /// Caps the number of graph nodes (tableau nodes; product states of the
    /// low-level search).
    pub fn with_max_nodes(mut self, max_nodes: usize) -> ResourceBudget {
        self.max_nodes = max_nodes;
        self
    }

    /// Caps the number of graph edges.
    pub fn with_max_edges(mut self, max_edges: usize) -> ResourceBudget {
        self.max_edges = max_edges;
        self
    }

    /// Caps the implicant count of any condition DNF (and the pre-absorption
    /// product estimate of any single fixpoint equation).
    pub fn with_max_implicants(mut self, max_implicants: usize) -> ResourceBudget {
        self.max_implicants = max_implicants;
        self
    }

    /// Caps the number of computations an enumerating sweep examines.
    pub fn with_max_enumeration(mut self, max_enumeration: usize) -> ResourceBudget {
        self.max_enumeration = max_enumeration;
        self
    }

    /// Sets an absolute wall-clock deadline; work still running past it is
    /// cut with [`Exhaustion::Deadline`].  Budgets sharing one deadline
    /// instant (e.g. every job of a batch) expire together.
    pub fn with_deadline(mut self, deadline: Instant) -> ResourceBudget {
        self.deadline = Some(deadline);
        self
    }

    /// [`ResourceBudget::with_deadline`] relative to now.  A timeout too
    /// large for the clock to represent means no deadline (it could never
    /// fire anyway), not a panic.
    pub fn with_timeout(mut self, timeout: Duration) -> ResourceBudget {
        self.deadline = Instant::now().checked_add(timeout);
        self
    }

    /// Attaches a cooperative cancellation token; see [`CancelToken`].
    pub fn with_cancel(mut self, cancel: CancelToken) -> ResourceBudget {
        self.cancel = Some(cancel);
        self
    }

    /// The graph-node cap.
    pub fn max_nodes(&self) -> usize {
        self.max_nodes
    }

    /// The graph-edge cap.
    pub fn max_edges(&self) -> usize {
        self.max_edges
    }

    /// The condition-DNF implicant cap.
    pub fn max_implicants(&self) -> usize {
        self.max_implicants
    }

    /// The enumeration cap.
    pub fn max_enumeration(&self) -> usize {
        self.max_enumeration
    }

    /// The wall-clock deadline, if one is set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The attached cancellation token, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// Polls the timing-dependent cutoffs: [`Exhaustion::Cancelled`] if the
    /// token fired, else [`Exhaustion::Deadline`] if the deadline passed,
    /// else `None`.  The engines call this at phase boundaries — and, inside
    /// long enumerations, every [`INTERRUPT_POLL_PERIOD`] items per worker;
    /// the structural caps are checked inline by each engine.
    pub fn interrupted(&self) -> Option<Exhaustion> {
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            return Some(Exhaustion::Cancelled);
        }
        if self.deadline.is_some_and(|deadline| Instant::now() >= deadline) {
            return Some(Exhaustion::Deadline);
        }
        None
    }
}

/// How many items a worker examines between polls of a [`ResourceBudget`]'s
/// timing-dependent cutoffs inside a long enumeration (bounded-model sweeps,
/// explore-run sweeps, selection checks).  One policy for every engine:
/// polling is a couple of atomic loads plus, with a deadline set, one
/// `Instant::now()` — a few hundred evaluations apart keeps that in the
/// noise while still cutting within milliseconds of the signal.
pub const INTERRUPT_POLL_PERIOD: usize = 512;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_and_fixed_resolve_to_expected_worker_counts() {
        assert_eq!(Parallelism::Off.workers(), 1);
        assert_eq!(Parallelism::Fixed(0).workers(), 1);
        assert_eq!(Parallelism::Fixed(3).workers(), 3);
        assert!(Parallelism::Auto.workers() >= 1);
    }

    #[test]
    fn pool_runs_every_worker_and_keeps_order() {
        let pool = WorkerPool::new(Parallelism::Fixed(4));
        assert_eq!(pool.workers(), 4);
        let squares = pool.run(|w| w * w);
        assert_eq!(squares, vec![0, 1, 4, 9]);
    }

    #[test]
    fn single_worker_pool_runs_inline() {
        let pool = WorkerPool::new(Parallelism::Off);
        let results = pool.run(|w| w);
        assert_eq!(results, vec![0]);
    }

    #[test]
    fn workers_can_borrow_the_callers_stack() {
        let data: Vec<usize> = (0..100).collect();
        let pool = WorkerPool::new(Parallelism::Fixed(3));
        let sums = pool.run(|w| data.iter().skip(w).step_by(3).sum::<usize>());
        assert_eq!(sums.iter().sum::<usize>(), data.iter().sum::<usize>());
    }

    #[test]
    fn map_preserves_index_order_on_both_paths() {
        let pool = WorkerPool::new(Parallelism::Fixed(3));
        // Below the inline threshold (runs sequentially)…
        let small: Vec<usize> = pool.map(5, |i| i * 10);
        assert_eq!(small, vec![0, 10, 20, 30, 40]);
        // …and above it (striped across workers): same contract.
        let threshold = 3 * MAP_INLINE_PER_WORKER;
        let big: Vec<usize> = pool.map(threshold + 7, |i| i * i);
        assert_eq!(big, (0..threshold + 7).map(|i| i * i).collect::<Vec<_>>());
        // Zero items is a no-op on any pool.
        assert_eq!(pool.map(0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn map_indexed_preserves_list_order_on_both_paths() {
        let pool = WorkerPool::new(Parallelism::Fixed(3));
        // A sparse, unsorted index set below the inline threshold…
        let small = [7usize, 2, 9];
        assert_eq!(pool.map_indexed(&small, |i| i * 10), vec![70, 20, 90]);
        // …and one above it (striped): same contract, list order kept.
        let big: Vec<usize> = (0..3 * MAP_INLINE_PER_WORKER + 5).map(|i| i * 3 + 1).collect();
        assert_eq!(
            pool.map_indexed(&big, |i| i + 1),
            big.iter().map(|&i| i + 1).collect::<Vec<_>>()
        );
        // The empty ready set is a no-op on any pool.
        assert_eq!(pool.map_indexed(&[], |i| i), Vec::<usize>::new());
    }

    #[test]
    fn earliest_keeps_the_minimum() {
        let cell = Earliest::new();
        assert!(!cell.found());
        assert_eq!(cell.bound(), usize::MAX);
        cell.record(42);
        cell.record(77);
        cell.record(7);
        assert_eq!(cell.bound(), 7);
        assert!(cell.found());
    }

    #[test]
    fn budgets_report_interruption_in_priority_order() {
        let unbounded = ResourceBudget::unbounded();
        assert_eq!(unbounded.interrupted(), None);
        assert_eq!(unbounded.max_nodes(), usize::MAX);

        let token = CancelToken::new();
        let budget = ResourceBudget::default()
            .with_timeout(Duration::from_secs(3600))
            .with_cancel(token.clone());
        assert_eq!(budget.interrupted(), None);
        token.cancel();
        assert_eq!(budget.interrupted(), Some(Exhaustion::Cancelled));
        // Every clone of the token observes the cancellation.
        assert!(budget.cancel_token().expect("token attached").is_cancelled());

        let expired = ResourceBudget::default().with_timeout(Duration::ZERO);
        assert_eq!(expired.interrupted(), Some(Exhaustion::Deadline));
    }

    #[test]
    fn budget_builders_set_every_cap() {
        let budget = ResourceBudget::new()
            .with_max_nodes(1)
            .with_max_edges(2)
            .with_max_implicants(3)
            .with_max_enumeration(4);
        assert_eq!(
            (
                budget.max_nodes(),
                budget.max_edges(),
                budget.max_implicants(),
                budget.max_enumeration()
            ),
            (1, 2, 3, 4)
        );
        assert!(budget.deadline().is_none());
        assert!(budget.cancel_token().is_none());
    }

    #[test]
    fn parallelism_parse_accepts_the_documented_forms() {
        assert_eq!(Parallelism::parse(""), Ok(None));
        assert_eq!(Parallelism::parse("  "), Ok(None));
        assert_eq!(Parallelism::parse("1"), Ok(Some(Parallelism::Auto)));
        assert_eq!(Parallelism::parse("true"), Ok(Some(Parallelism::Auto)));
        assert_eq!(Parallelism::parse("AUTO"), Ok(Some(Parallelism::Auto)));
        assert_eq!(Parallelism::parse("on"), Ok(Some(Parallelism::Auto)));
        assert_eq!(Parallelism::parse("0"), Ok(Some(Parallelism::Off)));
        assert_eq!(Parallelism::parse("off"), Ok(Some(Parallelism::Off)));
        assert_eq!(Parallelism::parse("false"), Ok(Some(Parallelism::Off)));
        assert_eq!(Parallelism::parse(" 4 "), Ok(Some(Parallelism::Fixed(4))));
        assert_eq!(Parallelism::parse("16"), Ok(Some(Parallelism::Fixed(16))));
    }

    #[test]
    fn parallelism_parse_rejects_malformed_values() {
        for bad in ["fuor", "4.0", "-2", "yes please", "auto2"] {
            let err = Parallelism::parse(bad).expect_err("should reject");
            assert!(err.contains(PARALLELISM_ENV), "error must name the variable: {err}");
            assert!(err.contains(bad.trim()), "error must echo the value: {err}");
        }
    }

    #[test]
    fn earliest_is_deterministic_under_concurrent_records() {
        let cell = Earliest::new();
        let pool = WorkerPool::new(Parallelism::Fixed(4));
        pool.run(|w| {
            for i in (w..1000).step_by(4) {
                cell.record(i);
            }
        });
        assert_eq!(cell.bound(), 0);
    }
}
