//! Formula patterns used in the report's evaluation.
//!
//! Appendix B §6 reports measurements for three formulae, R3, R4 and R5, built
//! from a "latched until" pattern:
//!
//! * `LU(P, Q)` is defined as `U(¬P, U(P ∧ ¬Q, Q))`;
//! * `LUA(X, Y)` is defined as `LU(X, X ∧ Y)`.
//!
//! (`U` is the weak until of the report.)  This module reconstructs those
//! definitions and the three benchmark formulae, as well as a few synthetic
//! families used by the scaling benchmarks.

use crate::syntax::Ltl;

/// `LU(p, q) = U(¬p, U(p ∧ ¬q, q))`.
pub fn lu(p: Ltl, q: Ltl) -> Ltl {
    let inner = p.clone().and(q.clone().not()).until(q);
    p.not().until(inner)
}

/// `LUA(x, y) = LU(x, x ∧ y)`.
pub fn lua(x: Ltl, y: Ltl) -> Ltl {
    lu(x.clone(), x.and(y))
}

/// R3: `□LUA(A, X) ∧ □LUA(A, Y) ⊃ □LUA(A, X ∧ Y)`.
pub fn r3() -> Ltl {
    let a = Ltl::prop("A");
    let x = Ltl::prop("X");
    let y = Ltl::prop("Y");
    lua(a.clone(), x.clone())
        .always()
        .and(lua(a.clone(), y.clone()).always())
        .implies(lua(a, x.and(y)).always())
}

/// R4: `□LUA(A, B ∧ C) ∧ □LUA(B, A ∧ ¬C) ⊃ □LUA(A ∨ B, False)`.
pub fn r4() -> Ltl {
    let a = Ltl::prop("A");
    let b = Ltl::prop("B");
    let c = Ltl::prop("C");
    lua(a.clone(), b.clone().and(c.clone()))
        .always()
        .and(lua(b.clone(), a.clone().and(c.not())).always())
        .implies(lua(a.or(b), Ltl::False).always())
}

/// R5: `LUA(A, B) ∧ LUA(B, C) ⊃ LUA(A ∨ B, C)`.
pub fn r5() -> Ltl {
    let a = Ltl::prop("A");
    let b = Ltl::prop("B");
    let c = Ltl::prop("C");
    lua(a.clone(), b.clone()).and(lua(b.clone(), c.clone())).implies(lua(a.or(b), c))
}

/// The three benchmark formulae of the Appendix B §6 table, with their names.
pub fn appendix_b_table() -> Vec<(&'static str, Ltl)> {
    vec![("R3", r3()), ("R4", r4()), ("R5", r5())]
}

/// A chain of nested eventualities `◇(P1 ∧ ◇(P2 ∧ ... ◇Pn))`, used for scaling studies.
pub fn eventuality_chain(n: usize) -> Ltl {
    let mut formula = Ltl::prop(format!("P{n}"));
    for i in (1..n).rev() {
        formula = Ltl::prop(format!("P{i}")).and(formula.eventually());
    }
    formula.eventually()
}

/// A response ladder `□(P1 ⊃ ◇P2) ∧ ... ∧ □(P{n-1} ⊃ ◇Pn) ⊃ □(P1 ⊃ ◇Pn)`,
/// valid for every `n ≥ 2`; used for scaling studies.
pub fn response_ladder(n: usize) -> Ltl {
    assert!(n >= 2, "a response ladder needs at least two propositions");
    let hyp = Ltl::conj((1..n).map(|i| {
        Ltl::prop(format!("P{i}")).implies(Ltl::prop(format!("P{}", i + 1)).eventually()).always()
    }));
    let concl = Ltl::prop("P1").implies(Ltl::prop(format!("P{n}")).eventually()).always();
    hyp.implies(concl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tableau::valid_pure;

    #[test]
    fn lu_of_identical_arguments_is_satisfiable() {
        assert!(crate::tableau::satisfiable_pure(&lu(Ltl::prop("P"), Ltl::prop("P"))));
    }

    #[test]
    fn r3_r4_r5_are_valid_in_pure_temporal_logic() {
        // The report states these formulae "were all shown to be valid in pure
        // temporal logic".
        assert!(valid_pure(&r3()), "R3 should be valid");
        assert!(valid_pure(&r4()), "R4 should be valid");
        assert!(valid_pure(&r5()), "R5 should be valid");
    }

    #[test]
    fn response_ladders_are_valid() {
        for n in 2..=4 {
            assert!(valid_pure(&response_ladder(n)), "ladder {n} should be valid");
        }
    }

    #[test]
    fn eventuality_chains_are_satisfiable_but_not_valid() {
        for n in 1..=3 {
            let f = eventuality_chain(n);
            assert!(crate::tableau::satisfiable_pure(&f));
            assert!(!valid_pure(&f));
        }
    }

    #[test]
    fn table_has_three_entries() {
        assert_eq!(appendix_b_table().len(), 3);
    }
}
