//! # ilogic-temporal
//!
//! Propositional discrete linear-time temporal logic with the tableau-based
//! decision procedures of Appendix B of *"An Interval Logic for Higher-Level
//! Temporal Reasoning"* (Schwartz, Melliar-Smith, Vogt, Plaisted; NASA CR
//! 172262 / PODC 1983).
//!
//! The crate provides:
//!
//! * [`syntax`] — formulas with `□`, `◇`, `◦` and the report's *weak* `Until`,
//!   over uninterpreted propositions and specialized-theory constraint atoms;
//! * [`semantics`] — exact evaluation over ultimately periodic computation
//!   sequences;
//! * [`tableau`] — the satisfiability graph `Graph(B)` and the `Iter` deletion
//!   loop;
//! * [`theory`] — specialized theories (propositional, linear integer
//!   arithmetic, equality) used by the combined procedures;
//! * [`algorithm_a`] — Algorithm A: the tableau pruned by a theory oracle;
//! * [`algorithm_b`] — Algorithm B: the condition formula `C = ∨ᵢ □Cᵢ` computed
//!   by a double fixpoint, with the theory consulted only at the end;
//! * [`patterns`] — the R3/R4/R5 formulae of the report's measurement table
//!   and synthetic formula families for scaling studies;
//! * [`pool`] — the workspace-wide scoped worker pool and [`pool::Parallelism`]
//!   knob (re-exported as `ilogic_core::pool`); hosted here, at the bottom of
//!   the crate graph, so the tableau and fixpoint engines can fan out over the
//!   same machinery as the higher layers.
//!
//! # Example
//!
//! ```
//! use ilogic_temporal::prelude::*;
//!
//! // "Henceforth a >= 1 implies eventually a > 0" (Appendix B §1).
//! let a_ge_1 = Ltl::cmp(Term::var("a"), CmpOp::Ge, Term::int(1));
//! let a_gt_0 = Ltl::cmp(Term::var("a"), CmpOp::Gt, Term::int(0));
//! let formula = a_ge_1.always().implies(a_gt_0.eventually());
//!
//! let linear = LinearTheory::new();
//! let algorithm = AlgorithmA::new(&linear);
//! assert!(algorithm.valid(&formula));
//! ```

pub mod algorithm_a;
pub mod algorithm_b;
pub mod dnf;
pub mod patterns;
pub mod pool;
pub mod semantics;
pub mod syntax;
pub mod tableau;
pub mod theory;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::algorithm_a::{AlgorithmA, AlgorithmAReport};
    pub use crate::algorithm_b::{AlgorithmB, Condition, Decision};
    pub use crate::pool::{Parallelism, WorkerPool};
    pub use crate::semantics::{TlState, TlTrace};
    pub use crate::syntax::{Atom, CmpOp, Literal, Ltl, Term, VarSpec};
    pub use crate::tableau::{prune, prune_with, satisfiable_pure, valid_pure, TableauGraph};
    pub use crate::theory::{
        CombinedTheory, EqualityTheory, LinearTheory, PropositionalTheory, Theory, TheoryResult,
    };
}
