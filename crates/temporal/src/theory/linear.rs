//! Linear arithmetic over integer-valued variables, decided by Fourier–Motzkin
//! elimination.
//!
//! This is the "theory of linear inequalities of integers" used as the running
//! example in Appendix B (e.g. *"Henceforth a ≥ 1 implies eventually a > 0"*,
//! or `□(y = x + x) ⊃ □(y = 2x)`).
//!
//! Literals are normalized to constraints of the form `Σ cᵢ·xᵢ ≤ b` (with
//! strict variants converted to non-strict using integrality), disequalities
//! are handled by case splitting, and satisfiability of the resulting system is
//! decided by eliminating variables one at a time.
//!
//! # Precision
//!
//! The procedure is **sound for unsatisfiability**: whenever it answers
//! `Unsatisfiable` the literal set really has no integer model (indeed no
//! rational model).  After strict-to-non-strict tightening it is exact for the
//! one- and two-variable difference-bound constraints that the report's
//! examples use; for general integer systems a `Satisfiable` answer may in rare
//! cases be witnessed only by rationals (the classical Fourier–Motzkin
//! limitation), which keeps the combined procedures conservative.

use std::collections::BTreeMap;

use super::{propositionally_inconsistent, Theory, TheoryResult};
use crate::syntax::{Atom, CmpOp, Literal, Term};

/// A linear constraint `Σ coeffs[v]·v  ≤ bound` over integer variables.
#[derive(Clone, Debug, PartialEq, Eq)]
struct LinearConstraint {
    coeffs: BTreeMap<String, i128>,
    bound: i128,
}

impl LinearConstraint {
    fn is_trivially_true(&self) -> bool {
        self.coeffs.is_empty() && 0 <= self.bound
    }

    fn is_trivially_false(&self) -> bool {
        self.coeffs.is_empty() && 0 > self.bound
    }
}

/// A linear combination of variables plus a constant, the normal form of a [`Term`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct LinearExpr {
    coeffs: BTreeMap<String, i128>,
    constant: i128,
}

impl LinearExpr {
    fn add_term(&mut self, term: &Term, scale: i128) {
        match term {
            Term::Var(v) => {
                *self.coeffs.entry(v.clone()).or_insert(0) += scale;
            }
            Term::Const(c) => self.constant += scale * i128::from(*c),
            Term::Add(a, b) => {
                self.add_term(a, scale);
                self.add_term(b, scale);
            }
            Term::Sub(a, b) => {
                self.add_term(a, scale);
                self.add_term(b, -scale);
            }
            Term::Mul(k, a) => self.add_term(a, scale * i128::from(*k)),
            Term::Neg(a) => self.add_term(a, -scale),
        }
    }

    fn from_term(term: &Term) -> LinearExpr {
        let mut expr = LinearExpr::default();
        expr.add_term(term, 1);
        expr
    }

    /// `lhs - rhs` as a linear expression.
    fn difference(lhs: &Term, rhs: &Term) -> LinearExpr {
        let mut expr = LinearExpr::from_term(lhs);
        expr.add_term(rhs, -1);
        expr.coeffs.retain(|_, c| *c != 0);
        expr
    }
}

/// The linear-arithmetic theory of integer variables.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinearTheory;

impl LinearTheory {
    /// Creates the theory.
    pub fn new() -> LinearTheory {
        LinearTheory
    }

    /// Normalizes a single constraint literal into zero or more alternative
    /// constraint systems (disequalities split into `<` or `>`).
    ///
    /// Each inner `Vec<LinearConstraint>` is one branch of the case split; the
    /// literal is satisfiable iff some branch is.
    fn normalize(lhs: &Term, op: CmpOp, rhs: &Term, positive: bool) -> Vec<Vec<LinearConstraint>> {
        let op = if positive { op } else { op.negate() };
        let diff = LinearExpr::difference(lhs, rhs);
        // diff.coeffs · vars + diff.constant  <op>  0
        let le = |expr: &LinearExpr, negate: bool, strict: bool| -> LinearConstraint {
            // expr ≤ 0   (or  -expr ≤ 0 when negate),  strict tightened by -1
            // because every variable and coefficient is an integer.
            let sign: i128 = if negate { -1 } else { 1 };
            let coeffs = expr.coeffs.iter().map(|(v, c)| (v.clone(), sign * *c)).collect();
            let mut bound = -sign * expr.constant;
            if strict {
                bound -= 1;
            }
            LinearConstraint { coeffs, bound }
        };
        match op {
            CmpOp::Le => vec![vec![le(&diff, false, false)]],
            CmpOp::Lt => vec![vec![le(&diff, false, true)]],
            CmpOp::Ge => vec![vec![le(&diff, true, false)]],
            CmpOp::Gt => vec![vec![le(&diff, true, true)]],
            CmpOp::Eq => vec![vec![le(&diff, false, false), le(&diff, true, false)]],
            CmpOp::Ne => vec![vec![le(&diff, false, true)], vec![le(&diff, true, true)]],
        }
    }

    /// Fourier–Motzkin elimination on a set of `≤` constraints.
    fn system_satisfiable(mut constraints: Vec<LinearConstraint>) -> bool {
        // Limit blow-up: the report's literal sets are small, but guard anyway.
        const MAX_CONSTRAINTS: usize = 50_000;
        loop {
            constraints.retain(|c| !c.is_trivially_true());
            if constraints.iter().any(LinearConstraint::is_trivially_false) {
                return false;
            }
            // Choose the variable occurring in the fewest constraints.
            let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
            for c in &constraints {
                for v in c.coeffs.keys() {
                    *counts.entry(v.as_str()).or_insert(0) += 1;
                }
            }
            let Some((&var, _)) = counts.iter().min_by_key(|(_, n)| **n) else {
                // No variables left, no trivially false constraint: satisfiable.
                return true;
            };
            let var = var.to_string();
            let mut uppers: Vec<LinearConstraint> = Vec::new();
            let mut lowers: Vec<LinearConstraint> = Vec::new();
            let mut rest: Vec<LinearConstraint> = Vec::new();
            for c in constraints {
                match c.coeffs.get(&var).copied().unwrap_or(0) {
                    0 => rest.push(c),
                    k if k > 0 => uppers.push(c),
                    _ => lowers.push(c),
                }
            }
            // Combine each (lower, upper) pair, eliminating `var`.
            for lo in &lowers {
                for hi in &uppers {
                    let a = -lo.coeffs[&var]; // positive
                    let b = hi.coeffs[&var]; // positive
                    let mut coeffs: BTreeMap<String, i128> = BTreeMap::new();
                    for (v, c) in &lo.coeffs {
                        if v != &var {
                            *coeffs.entry(v.clone()).or_insert(0) += b * c;
                        }
                    }
                    for (v, c) in &hi.coeffs {
                        if v != &var {
                            *coeffs.entry(v.clone()).or_insert(0) += a * c;
                        }
                    }
                    coeffs.retain(|_, c| *c != 0);
                    let bound = b * lo.bound + a * hi.bound;
                    rest.push(LinearConstraint { coeffs, bound });
                    if rest.len() > MAX_CONSTRAINTS {
                        // Give up conservatively: report satisfiable.
                        return true;
                    }
                }
            }
            constraints = rest;
        }
    }
}

impl Theory for LinearTheory {
    fn name(&self) -> &str {
        "linear-integer-arithmetic"
    }

    fn satisfiable(&self, literals: &[Literal]) -> TheoryResult {
        if propositionally_inconsistent(literals) {
            return TheoryResult::Unsatisfiable;
        }
        // Gather the case-split branches of every constraint literal.
        let mut branches: Vec<Vec<Vec<LinearConstraint>>> = Vec::new();
        for lit in literals {
            if let Atom::Cmp { lhs, op, rhs } = &lit.atom {
                branches.push(LinearTheory::normalize(lhs, *op, rhs, lit.positive));
            }
        }
        if branches.is_empty() {
            return TheoryResult::Satisfiable;
        }
        // Try every combination of branches (disequalities are rare, so the
        // product stays small); satisfiable if any combination is.
        let mut index = vec![0usize; branches.len()];
        loop {
            let mut system: Vec<LinearConstraint> = Vec::new();
            for (b, &i) in branches.iter().zip(index.iter()) {
                system.extend(b[i].iter().cloned());
            }
            if LinearTheory::system_satisfiable(system) {
                return TheoryResult::Satisfiable;
            }
            // Advance the mixed-radix counter.
            let mut pos = 0;
            loop {
                if pos == branches.len() {
                    return TheoryResult::Unsatisfiable;
                }
                index[pos] += 1;
                if index[pos] < branches[pos].len() {
                    break;
                }
                index[pos] = 0;
                pos += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Term {
        Term::var("x")
    }
    fn y() -> Term {
        Term::var("y")
    }
    fn lit(lhs: Term, op: CmpOp, rhs: Term) -> Literal {
        Literal::pos(Atom::cmp(lhs, op, rhs))
    }
    fn nlit(lhs: Term, op: CmpOp, rhs: Term) -> Literal {
        Literal::neg(Atom::cmp(lhs, op, rhs))
    }

    #[test]
    fn simple_bounds_are_consistent() {
        let t = LinearTheory::new();
        let lits = vec![lit(x(), CmpOp::Ge, Term::int(1)), lit(x(), CmpOp::Le, Term::int(5))];
        assert_eq!(t.satisfiable(&lits), TheoryResult::Satisfiable);
    }

    #[test]
    fn contradictory_bounds_are_detected() {
        let t = LinearTheory::new();
        let lits = vec![lit(x(), CmpOp::Ge, Term::int(6)), lit(x(), CmpOp::Le, Term::int(5))];
        assert_eq!(t.satisfiable(&lits), TheoryResult::Unsatisfiable);
    }

    #[test]
    fn report_example_a_ge_1_implies_a_gt_0() {
        // a >= 1 and not (a > 0) is unsatisfiable: the key step of
        // "Henceforth a >= 1 implies eventually a > 0".
        let t = LinearTheory::new();
        let a = Term::var("a");
        let lits = vec![lit(a.clone(), CmpOp::Ge, Term::int(1)), nlit(a, CmpOp::Gt, Term::int(0))];
        assert_eq!(t.satisfiable(&lits), TheoryResult::Unsatisfiable);
    }

    #[test]
    fn report_example_y_eq_x_plus_x_implies_y_eq_2x() {
        // y = x + x  and  y /= 2x  is unsatisfiable.
        let t = LinearTheory::new();
        let lits = vec![lit(y(), CmpOp::Eq, x().plus(x())), nlit(y(), CmpOp::Eq, x().times(2))];
        assert_eq!(t.satisfiable(&lits), TheoryResult::Unsatisfiable);
    }

    #[test]
    fn report_example_x_gt_0_or_x_lt_1_covers_all_integers() {
        // ¬(x > 0) ∧ ¬(x < 1) is unsatisfiable over the integers
        // (Appendix B §5.1's extralogical-variable example).
        let t = LinearTheory::new();
        let lits = vec![nlit(x(), CmpOp::Gt, Term::int(0)), nlit(x(), CmpOp::Lt, Term::int(1))];
        assert_eq!(t.satisfiable(&lits), TheoryResult::Unsatisfiable);
    }

    #[test]
    fn strict_inequalities_are_tightened_for_integers() {
        // 0 < x < 1 has no integer solution.
        let t = LinearTheory::new();
        let lits = vec![lit(x(), CmpOp::Gt, Term::int(0)), lit(x(), CmpOp::Lt, Term::int(1))];
        assert_eq!(t.satisfiable(&lits), TheoryResult::Unsatisfiable);
    }

    #[test]
    fn disequalities_case_split() {
        let t = LinearTheory::new();
        // x /= 3 together with 3 <= x <= 3 is unsatisfiable.
        let lits = vec![
            lit(x(), CmpOp::Ne, Term::int(3)),
            lit(x(), CmpOp::Ge, Term::int(3)),
            lit(x(), CmpOp::Le, Term::int(3)),
        ];
        assert_eq!(t.satisfiable(&lits), TheoryResult::Unsatisfiable);
        // x /= 3 alone is satisfiable.
        let lits = vec![lit(x(), CmpOp::Ne, Term::int(3))];
        assert_eq!(t.satisfiable(&lits), TheoryResult::Satisfiable);
    }

    #[test]
    fn multi_variable_chains() {
        let t = LinearTheory::new();
        // x <= y, y <= z, z <= x - 1 is unsatisfiable.
        let z = Term::var("z");
        let lits = vec![
            lit(x(), CmpOp::Le, y()),
            lit(y(), CmpOp::Le, z.clone()),
            lit(z, CmpOp::Le, x().minus(Term::int(1))),
        ];
        assert_eq!(t.satisfiable(&lits), TheoryResult::Unsatisfiable);
    }

    #[test]
    fn propositional_atoms_are_still_checked() {
        let t = LinearTheory::new();
        let p = Atom::prop("P");
        let lits = vec![Literal::pos(p.clone()), Literal::neg(p)];
        assert_eq!(t.satisfiable(&lits), TheoryResult::Unsatisfiable);
    }

    #[test]
    fn empty_set_is_satisfiable() {
        assert!(LinearTheory::new().satisfiable(&[]).is_sat());
    }
}
