//! Specialized theories for the combined decision procedures of Appendix B.
//!
//! The tableau method reasons about the temporal structure of a formula; each
//! edge of the tableau graph is labelled with a conjunction of literals whose
//! consistency is a question for a *specialized theory* `T`.  A theory is
//! anything that can decide satisfiability of a conjunction of literals:
//!
//! * [`PropositionalTheory`] — atoms are uninterpreted; a conjunction is
//!   satisfiable unless it contains complementary literals.
//! * [`LinearTheory`] — constraint atoms are linear inequalities over
//!   integer-valued variables, decided by Fourier–Motzkin elimination
//!   (see [`linear`]).
//! * [`EqualityTheory`] — constraint atoms are equalities and disequalities
//!   between variables and constants, decided by union-find
//!   (see [`equality`]).
//! * [`CombinedTheory`] — the Nelson–Oppen style cooperating combination of
//!   the equality and linear theories (see [`combine`]).

pub mod combine;
pub mod equality;
pub mod linear;

use crate::syntax::{Atom, Literal};

pub use combine::CombinedTheory;
pub use equality::EqualityTheory;
pub use linear::LinearTheory;

/// Result of a theory satisfiability query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TheoryResult {
    /// The conjunction of literals has a model in the theory.
    Satisfiable,
    /// The conjunction of literals has no model in the theory.
    Unsatisfiable,
}

impl TheoryResult {
    /// `true` when satisfiable.
    pub fn is_sat(self) -> bool {
        matches!(self, TheoryResult::Satisfiable)
    }
}

/// A decision procedure for conjunctions of literals in some specialized theory.
///
/// Implementations must be *sound for unsatisfiability*: they may only answer
/// [`TheoryResult::Unsatisfiable`] if the conjunction really has no model.  A
/// conservative implementation may answer `Satisfiable` when unsure; the
/// combined procedures then remain sound for validity but may fail to prove
/// some valid formulas (this matches the report's treatment, which assumes an
/// oracle and inherits its precision).
///
/// `Send + Sync` is a supertrait requirement: the parallel tableau and
/// condition-fixpoint engines consult the theory concurrently from pool
/// workers, so an implementation must be a stateless (or internally
/// synchronized) oracle.  Every theory in this crate is a plain value type.
pub trait Theory: Send + Sync {
    /// A short human-readable name, used in diagnostics.
    fn name(&self) -> &str;

    /// Decides whether the conjunction of `literals` is satisfiable in the theory.
    fn satisfiable(&self, literals: &[Literal]) -> TheoryResult;

    /// Decides whether a single literal is valid (its negation unsatisfiable).
    fn literal_valid(&self, literal: &Literal) -> bool {
        !self.satisfiable(&[literal.complement()]).is_sat()
    }
}

/// Returns `true` if the literal set contains a complementary pair or a
/// trivially false literal; shared by all theory implementations.
pub(crate) fn propositionally_inconsistent(literals: &[Literal]) -> bool {
    for (i, a) in literals.iter().enumerate() {
        for b in literals.iter().skip(i + 1) {
            if a.atom == b.atom && a.positive != b.positive {
                return true;
            }
        }
    }
    false
}

/// The pure propositional theory: every atom is uninterpreted.
///
/// This is the theory in force when deciding validity "in pure temporal
/// logic"; it is also what Algorithm B uses while building its condition
/// formula, deferring all theory reasoning to the very end.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PropositionalTheory;

impl PropositionalTheory {
    /// Creates the propositional theory.
    pub fn new() -> PropositionalTheory {
        PropositionalTheory
    }
}

impl Theory for PropositionalTheory {
    fn name(&self) -> &str {
        "propositional"
    }

    fn satisfiable(&self, literals: &[Literal]) -> TheoryResult {
        if propositionally_inconsistent(literals) {
            TheoryResult::Unsatisfiable
        } else {
            TheoryResult::Satisfiable
        }
    }
}

/// Splits a literal list into propositional literals and constraint literals.
pub fn partition_literals(literals: &[Literal]) -> (Vec<Literal>, Vec<Literal>) {
    let mut props = Vec::new();
    let mut constraints = Vec::new();
    for lit in literals {
        match lit.atom {
            Atom::Prop(_) => props.push(lit.clone()),
            Atom::Cmp { .. } => constraints.push(lit.clone()),
        }
    }
    (props, constraints)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::{Atom, CmpOp, Term};

    #[test]
    fn propositional_theory_detects_complementary_pairs() {
        let t = PropositionalTheory::new();
        let p = Atom::prop("P");
        let lits = vec![Literal::pos(p.clone()), Literal::neg(p)];
        assert_eq!(t.satisfiable(&lits), TheoryResult::Unsatisfiable);
    }

    #[test]
    fn propositional_theory_accepts_consistent_sets() {
        let t = PropositionalTheory::new();
        let lits = vec![
            Literal::pos(Atom::prop("P")),
            Literal::neg(Atom::prop("Q")),
            Literal::pos(Atom::cmp(Term::var("x"), CmpOp::Gt, Term::int(0))),
        ];
        assert_eq!(t.satisfiable(&lits), TheoryResult::Satisfiable);
        assert!(t.satisfiable(&[]).is_sat());
    }

    #[test]
    fn literal_validity_via_complement() {
        let t = PropositionalTheory::new();
        // No propositional literal is valid on its own.
        assert!(!t.literal_valid(&Literal::pos(Atom::prop("P"))));
    }

    #[test]
    fn partition_splits_props_and_constraints() {
        let lits = vec![
            Literal::pos(Atom::prop("P")),
            Literal::pos(Atom::cmp(Term::var("x"), CmpOp::Gt, Term::int(0))),
        ];
        let (p, c) = partition_literals(&lits);
        assert_eq!(p.len(), 1);
        assert_eq!(c.len(), 1);
    }
}
