//! Cooperating combination of specialized theories in the style of
//! Nelson–Oppen.
//!
//! Appendix B motivates its combined procedures with the decision procedures
//! of Nelson, Oppen and Shostak for combinations of quantifier-free theories.
//! This module provides such a combination for the two interpreted theories of
//! this crate: constraint literals are *partitioned* between the equality
//! theory (equalities and disequalities over variables and constants) and the
//! linear-arithmetic theory (everything else), each partition is decided by
//! its own procedure, and equalities between shared variables that one theory
//! entails are *propagated* to the other until a fixed point is reached.
//!
//! The propagation loop is complete for convex theories; over the integers
//! (which are not convex) it remains sound for unsatisfiability — exactly the
//! contract the [`Theory`] trait requires — and in the rare cases where a case
//! split on an entailed disjunction of equalities would be needed it
//! conservatively answers `Satisfiable`.

use crate::syntax::{Atom, CmpOp, Literal, Term};
use crate::theory::{
    propositionally_inconsistent, EqualityTheory, LinearTheory, Theory, TheoryResult,
};

/// The Nelson–Oppen style combination of [`EqualityTheory`] and [`LinearTheory`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CombinedTheory {
    equality: EqualityTheory,
    linear: LinearTheory,
}

impl CombinedTheory {
    /// Creates the combined theory.
    pub fn new() -> CombinedTheory {
        CombinedTheory::default()
    }

    /// `true` if the atom belongs to the equality partition: an equality or
    /// disequality whose two sides are plain variables or constants.
    fn is_equality_atom(atom: &Atom) -> bool {
        match atom {
            Atom::Cmp { lhs, op, rhs } => {
                matches!(op, CmpOp::Eq | CmpOp::Ne)
                    && matches!(lhs, Term::Var(_) | Term::Const(_))
                    && matches!(rhs, Term::Var(_) | Term::Const(_))
            }
            Atom::Prop(_) => false,
        }
    }

    /// Splits constraint literals into the equality partition and the linear
    /// partition (propositional literals are dropped here; their consistency
    /// is checked separately).
    fn partition(literals: &[Literal]) -> (Vec<Literal>, Vec<Literal>) {
        let mut equality = Vec::new();
        let mut linear = Vec::new();
        for lit in literals {
            match &lit.atom {
                Atom::Prop(_) => {}
                Atom::Cmp { .. } if CombinedTheory::is_equality_atom(&lit.atom) => {
                    equality.push(lit.clone());
                }
                Atom::Cmp { .. } => linear.push(lit.clone()),
            }
        }
        (equality, linear)
    }

    /// The variables occurring in the constraint literals.
    fn variables(literals: &[Literal]) -> Vec<String> {
        let mut vars = Vec::new();
        for lit in literals {
            if let Atom::Cmp { lhs, rhs, .. } = &lit.atom {
                lhs.collect_vars(&mut vars);
                rhs.collect_vars(&mut vars);
            }
        }
        vars
    }

    /// `true` if the theory entails `x = y` given `literals`, i.e. adding
    /// `x ≠ y` makes the set unsatisfiable.
    fn entails_equality(theory: &dyn Theory, literals: &[Literal], x: &str, y: &str) -> bool {
        let mut extended = literals.to_vec();
        extended.push(Literal::pos(Atom::cmp(Term::var(x), CmpOp::Ne, Term::var(y))));
        !theory.satisfiable(&extended).is_sat()
    }
}

impl Theory for CombinedTheory {
    fn name(&self) -> &str {
        "nelson-oppen(equality + linear-integer-arithmetic)"
    }

    fn satisfiable(&self, literals: &[Literal]) -> TheoryResult {
        if propositionally_inconsistent(literals) {
            return TheoryResult::Unsatisfiable;
        }
        let (mut eq_part, mut lin_part) = CombinedTheory::partition(literals);

        // Shared variables: those occurring in both partitions are the only
        // candidates whose entailed equalities need to be exchanged.
        let eq_vars = CombinedTheory::variables(&eq_part);
        let lin_vars = CombinedTheory::variables(&lin_part);
        let shared: Vec<String> =
            eq_vars.iter().filter(|v| lin_vars.contains(v)).cloned().collect();

        loop {
            if !self.equality.satisfiable(&eq_part).is_sat()
                || !self.linear.satisfiable(&lin_part).is_sat()
            {
                return TheoryResult::Unsatisfiable;
            }
            // Propagate entailed equalities over shared variables.
            let mut new_equalities = Vec::new();
            for (i, x) in shared.iter().enumerate() {
                for y in shared.iter().skip(i + 1) {
                    let eq_lit = Literal::pos(Atom::cmp(Term::var(x), CmpOp::Eq, Term::var(y)));
                    let already_known = eq_part.contains(&eq_lit) && lin_part.contains(&eq_lit);
                    if already_known {
                        continue;
                    }
                    let entailed = CombinedTheory::entails_equality(&self.equality, &eq_part, x, y)
                        || CombinedTheory::entails_equality(&self.linear, &lin_part, x, y);
                    if entailed {
                        new_equalities.push(eq_lit);
                    }
                }
            }
            let mut changed = false;
            for eq_lit in new_equalities {
                if !eq_part.contains(&eq_lit) {
                    eq_part.push(eq_lit.clone());
                    changed = true;
                }
                if !lin_part.contains(&eq_lit) {
                    lin_part.push(eq_lit);
                    changed = true;
                }
            }
            if !changed {
                return TheoryResult::Satisfiable;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm_a::AlgorithmA;
    use crate::syntax::Ltl;

    fn var_eq(a: &str, b: &str) -> Literal {
        Literal::pos(Atom::cmp(Term::var(a), CmpOp::Eq, Term::var(b)))
    }
    fn var_ne(a: &str, b: &str) -> Literal {
        Literal::pos(Atom::cmp(Term::var(a), CmpOp::Ne, Term::var(b)))
    }
    fn cmp(a: &str, op: CmpOp, b: Term) -> Literal {
        Literal::pos(Atom::cmp(Term::var(a), op, b))
    }

    #[test]
    fn propagation_from_linear_to_equality_detects_unsatisfiability() {
        // Equality partition: a = b, b ≠ c.  Linear partition: a ≥ c, c ≥ a
        // (which entails a = c).  Each partition alone is satisfiable; the
        // propagated equality a = c closes the contradiction.
        let t = CombinedTheory::new();
        let lits = vec![
            var_eq("a", "b"),
            var_ne("b", "c"),
            cmp("a", CmpOp::Ge, Term::var("c")),
            cmp("c", CmpOp::Ge, Term::var("a")),
        ];
        assert_eq!(t.satisfiable(&lits), TheoryResult::Unsatisfiable);
        // Each component alone accepts its partition.
        assert!(EqualityTheory::new().satisfiable(&lits[..2]).is_sat());
        assert!(LinearTheory::new().satisfiable(&lits[2..]).is_sat());
    }

    #[test]
    fn propagation_from_equality_to_linear_detects_unsatisfiability() {
        // Equality partition: a = b.  Linear partition: b ≥ 1, a ≤ 0.
        let t = CombinedTheory::new();
        let lits = vec![
            var_eq("a", "b"),
            cmp("b", CmpOp::Ge, Term::int(1)),
            cmp("a", CmpOp::Le, Term::int(0)),
        ];
        assert_eq!(t.satisfiable(&lits), TheoryResult::Unsatisfiable);
    }

    #[test]
    fn satisfiable_mixed_sets_are_accepted() {
        let t = CombinedTheory::new();
        let lits = vec![
            var_eq("a", "b"),
            var_ne("b", "c"),
            cmp("c", CmpOp::Ge, Term::var("a").plus(Term::int(1))),
        ];
        assert_eq!(t.satisfiable(&lits), TheoryResult::Satisfiable);
        assert!(t.satisfiable(&[]).is_sat());
    }

    #[test]
    fn single_theory_inconsistencies_still_surface() {
        let t = CombinedTheory::new();
        // Purely linear contradiction.
        let linear_only =
            vec![cmp("x", CmpOp::Ge, Term::int(1)), cmp("x", CmpOp::Le, Term::int(0))];
        assert_eq!(t.satisfiable(&linear_only), TheoryResult::Unsatisfiable);
        // Purely equational contradiction.
        let equality_only = vec![var_eq("a", "b"), var_eq("b", "c"), var_ne("a", "c")];
        assert_eq!(t.satisfiable(&equality_only), TheoryResult::Unsatisfiable);
        // Propositional contradiction.
        let prop = Atom::prop("P");
        let prop_only = vec![Literal::pos(prop.clone()), Literal::neg(prop)];
        assert_eq!(t.satisfiable(&prop_only), TheoryResult::Unsatisfiable);
    }

    #[test]
    fn chained_propagation_reaches_a_fixed_point() {
        // Linear: b ≤ c, c ≤ b  (entails b = c).  Equality: a = b, a ≠ c.
        let t = CombinedTheory::new();
        let lits = vec![
            cmp("b", CmpOp::Le, Term::var("c")),
            cmp("c", CmpOp::Le, Term::var("b")),
            var_eq("a", "b"),
            var_ne("a", "c"),
        ];
        assert_eq!(t.satisfiable(&lits), TheoryResult::Unsatisfiable);
    }

    #[test]
    fn literal_validity_uses_the_combination() {
        let t = CombinedTheory::new();
        // x = x is valid; x = y is not.
        assert!(t.literal_valid(&Literal::pos(Atom::cmp(
            Term::var("x"),
            CmpOp::Eq,
            Term::var("x")
        ))));
        assert!(!t.literal_valid(&var_eq("x", "y")));
    }

    #[test]
    fn algorithm_a_accepts_the_combined_theory() {
        // □(a = b ∧ b ≥ 1) ⊃ ◇(a ≥ 1) is valid over the combination.
        let premise = Ltl::cmp(Term::var("a"), CmpOp::Eq, Term::var("b"))
            .and(Ltl::cmp(Term::var("b"), CmpOp::Ge, Term::int(1)))
            .always();
        let conclusion = Ltl::cmp(Term::var("a"), CmpOp::Ge, Term::int(1)).eventually();
        let formula = premise.implies(conclusion);
        let theory = CombinedTheory::new();
        assert!(AlgorithmA::new(&theory).valid(&formula));
        // The same implication with the conclusion strengthened to a ≥ 2 is not valid.
        let premise = Ltl::cmp(Term::var("a"), CmpOp::Eq, Term::var("b"))
            .and(Ltl::cmp(Term::var("b"), CmpOp::Ge, Term::int(1)))
            .always();
        let wrong = premise.implies(Ltl::cmp(Term::var("a"), CmpOp::Ge, Term::int(2)).eventually());
        assert!(!AlgorithmA::new(&theory).valid(&wrong));
    }
}
