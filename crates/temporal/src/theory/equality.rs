//! The theory of equality over uninterpreted values, decided by union-find.
//!
//! Appendix B cites the cooperating decision procedures of Nelson–Oppen and
//! Shostak as the intended suppliers of specialized theories; equality over
//! uninterpreted constants and variables is the simplest member of that family
//! and is sufficient for specifications that compare message identities,
//! sequence numbers, and similar opaque values.
//!
//! Atoms handled by this theory are comparisons whose two sides are a variable
//! or an integer constant and whose operator is `=` or `/=`; any richer
//! constraint atom is treated as an opaque proposition (consistent unless it
//! appears with both polarities), which keeps the theory sound for
//! unsatisfiability.

use std::collections::BTreeMap;

use super::{propositionally_inconsistent, Theory, TheoryResult};
use crate::syntax::{Atom, CmpOp, Literal, Term};

/// One side of an equality atom.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Node {
    Var(String),
    Const(i64),
}

fn as_node(term: &Term) -> Option<Node> {
    match term {
        Term::Var(v) => Some(Node::Var(v.clone())),
        Term::Const(c) => Some(Node::Const(*c)),
        Term::Neg(inner) => match as_node(inner) {
            Some(Node::Const(c)) => Some(Node::Const(-c)),
            _ => None,
        },
        _ => None,
    }
}

/// A simple union-find over [`Node`]s.
#[derive(Debug, Default)]
struct UnionFind {
    parent: Vec<usize>,
    ids: BTreeMap<Node, usize>,
    nodes: Vec<Node>,
}

impl UnionFind {
    fn id(&mut self, node: Node) -> usize {
        if let Some(&id) = self.ids.get(&node) {
            return id;
        }
        let id = self.parent.len();
        self.parent.push(id);
        self.ids.insert(node.clone(), id);
        self.nodes.push(node);
        id
    }

    fn find(&mut self, mut id: usize) -> usize {
        while self.parent[id] != id {
            self.parent[id] = self.parent[self.parent[id]];
            id = self.parent[id];
        }
        id
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[ra] = rb;
        }
    }

    /// After all unions, checks that no two distinct constants share a class.
    fn constants_consistent(&mut self) -> bool {
        let mut class_const: BTreeMap<usize, i64> = BTreeMap::new();
        for i in 0..self.nodes.len() {
            if let Node::Const(c) = self.nodes[i] {
                let root = self.find(i);
                if let Some(&existing) = class_const.get(&root) {
                    if existing != c {
                        return false;
                    }
                } else {
                    class_const.insert(root, c);
                }
            }
        }
        true
    }
}

/// The equality theory over uninterpreted values.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EqualityTheory;

impl EqualityTheory {
    /// Creates the theory.
    pub fn new() -> EqualityTheory {
        EqualityTheory
    }

    fn relevant(atom: &Atom) -> Option<(Node, Node, bool)> {
        if let Atom::Cmp { lhs, op, rhs } = atom {
            let eq = match op {
                CmpOp::Eq => true,
                CmpOp::Ne => false,
                _ => return None,
            };
            let l = as_node(lhs)?;
            let r = as_node(rhs)?;
            return Some((l, r, eq));
        }
        None
    }
}

impl Theory for EqualityTheory {
    fn name(&self) -> &str {
        "equality"
    }

    fn satisfiable(&self, literals: &[Literal]) -> TheoryResult {
        if propositionally_inconsistent(literals) {
            return TheoryResult::Unsatisfiable;
        }
        let mut uf = UnionFind::default();
        let mut disequalities: Vec<(usize, usize)> = Vec::new();
        for lit in literals {
            let Some((l, r, eq)) = EqualityTheory::relevant(&lit.atom) else { continue };
            let li = uf.id(l);
            let ri = uf.id(r);
            // A literal asserts equality when (atom is `=`) == (polarity is positive).
            if eq == lit.positive {
                uf.union(li, ri);
            } else {
                disequalities.push((li, ri));
            }
        }
        if !uf.constants_consistent() {
            return TheoryResult::Unsatisfiable;
        }
        for (a, b) in disequalities {
            if uf.find(a) == uf.find(b) {
                return TheoryResult::Unsatisfiable;
            }
        }
        TheoryResult::Satisfiable
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eq(a: &str, b: &str) -> Literal {
        Literal::pos(Atom::cmp(Term::var(a), CmpOp::Eq, Term::var(b)))
    }
    fn ne(a: &str, b: &str) -> Literal {
        Literal::pos(Atom::cmp(Term::var(a), CmpOp::Ne, Term::var(b)))
    }
    fn eq_const(a: &str, c: i64) -> Literal {
        Literal::pos(Atom::cmp(Term::var(a), CmpOp::Eq, Term::int(c)))
    }

    #[test]
    fn transitive_equality_conflicts_with_disequality() {
        let t = EqualityTheory::new();
        let lits = vec![eq("a", "b"), eq("b", "c"), ne("a", "c")];
        assert_eq!(t.satisfiable(&lits), TheoryResult::Unsatisfiable);
    }

    #[test]
    fn consistent_partition_is_accepted() {
        let t = EqualityTheory::new();
        let lits = vec![eq("a", "b"), ne("b", "c"), eq("c", "d")];
        assert_eq!(t.satisfiable(&lits), TheoryResult::Satisfiable);
    }

    #[test]
    fn distinct_constants_cannot_be_identified() {
        let t = EqualityTheory::new();
        let lits = vec![eq_const("a", 0), eq_const("b", 1), eq("a", "b")];
        assert_eq!(t.satisfiable(&lits), TheoryResult::Unsatisfiable);
    }

    #[test]
    fn negated_disequality_is_equality() {
        let t = EqualityTheory::new();
        let lits =
            vec![Literal::neg(Atom::cmp(Term::var("a"), CmpOp::Ne, Term::var("b"))), ne("a", "b")];
        assert_eq!(t.satisfiable(&lits), TheoryResult::Unsatisfiable);
    }

    #[test]
    fn self_disequality_is_unsatisfiable() {
        let t = EqualityTheory::new();
        assert_eq!(t.satisfiable(&[ne("a", "a")]), TheoryResult::Unsatisfiable);
    }

    #[test]
    fn irrelevant_atoms_are_opaque_but_polarities_checked() {
        let t = EqualityTheory::new();
        let rich = Atom::cmp(Term::var("a").plus(Term::var("b")), CmpOp::Eq, Term::int(2));
        assert!(t.satisfiable(&[Literal::pos(rich.clone())]).is_sat());
        assert_eq!(
            t.satisfiable(&[Literal::pos(rich.clone()), Literal::neg(rich)]),
            TheoryResult::Unsatisfiable
        );
    }
}
