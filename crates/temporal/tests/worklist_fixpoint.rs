//! Differential tests for the semi-naive worklist fixpoint (ISSUE 7).
//!
//! The worklist engine skips equations whose inputs did not change since
//! their last evaluation.  The claim that makes that safe — a skipped
//! equation would have replayed entirely from the memo tables, mutating
//! nothing and charging nothing — is pinned here three ways:
//!
//! * against the PR 5 full-sweep (Jacobi) discipline
//!   ([`condition_of_graph_full_sweep_stats`]): bit-identical conditions,
//!   interned-implicant charges, and budget trip reasons, on random
//!   tableaux and on the pattern catalogue, at every worker count;
//! * against the PR 3 `BTreeSet` oracle ([`condition_of_graph_baseline`]):
//!   same conditions wherever neither path trips;
//! * within the worklist engine itself: identical `StoreStats` (memo
//!   counters included) from `Off` to `Fixed(4)`, and strictly positive
//!   skip counters on ladder3 — the regression guard that the engine is not
//!   silently falling back to full sweeps.

use ilogic_temporal::algorithm_b::{
    condition_of_graph_baseline, condition_of_graph_budgeted_stats,
    condition_of_graph_full_sweep_stats, evaluate_condition_at_budgeted_stats,
    evaluate_condition_at_full_sweep_stats, Condition,
};
use ilogic_temporal::patterns;
use ilogic_temporal::pool::{Parallelism, ResourceBudget};
use ilogic_temporal::syntax::Ltl;
use ilogic_temporal::tableau::TableauGraph;
use proptest::prelude::*;

/// The worker counts every differential claim is checked at (0 = `Off`).
const WORKER_COUNTS: [usize; 3] = [0, 2, 4];

fn parallelism(workers: usize) -> Parallelism {
    if workers == 0 {
        Parallelism::Off
    } else {
        Parallelism::Fixed(workers)
    }
}

/// Random pure-temporal formulas over a two-proposition alphabet — deep
/// enough to produce multi-node SCCs and several eventualities, the regime
/// where skipping matters.
fn arb_formula(depth: u32) -> BoxedStrategy<Ltl> {
    let leaf =
        prop_oneof![Just(Ltl::prop("P")), Just(Ltl::prop("Q")), Just(Ltl::True), Just(Ltl::False),];
    leaf.prop_recursive(depth, 16, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(Ltl::not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.clone().prop_map(Ltl::next),
            inner.clone().prop_map(Ltl::always),
            inner.clone().prop_map(Ltl::eventually),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.until(b)),
        ]
    })
    .boxed()
}

/// `Graph(¬formula)` under `budget`, or `None` when the build itself trips
/// (nothing to compare then — both fixpoint paths would see the same cut).
fn graph_of(formula: &Ltl, budget: &ResourceBudget) -> Option<TableauGraph> {
    TableauGraph::try_build_budgeted(&formula.clone().not(), budget, Parallelism::Off).ok()
}

/// Evaluates an explicit condition DNF at an atom assignment — the spec the
/// Boolean worklist projection must agree with.
fn dnf_at(condition: &Condition, atom_true: &[bool]) -> bool {
    condition.dnf().implicants().any(|imp| imp.iter().all(|&e| atom_true[e]))
}

/// The full differential check for one graph and one budget: worklist vs
/// full-sweep at every worker count (conditions, charges, trip reasons,
/// stats worker-count-invariance), plus the skip-accounting invariants.
fn check_worklist_against_full_sweep(label: &str, graph: &TableauGraph, budget: &ResourceBudget) {
    let (full, full_stats) =
        condition_of_graph_full_sweep_stats(graph.clone(), budget, Parallelism::Off);
    let mut first_stats = None;
    for workers in WORKER_COUNTS {
        let (delta, delta_stats) =
            condition_of_graph_budgeted_stats(graph.clone(), budget, parallelism(workers));
        // The worklist run's entire counter block — memo hits included — is a
        // pure function of the iteration history, never of the worker count.
        match &first_stats {
            None => first_stats = Some(delta_stats),
            Some(expected) => assert_eq!(
                *expected, delta_stats,
                "{label}: worklist stats differ at {workers} workers"
            ),
        }
        // Charges are bit-identical to the full sweep on both outcomes: a
        // skipped equation never interns.
        assert_eq!(
            full_stats.interned_implicants, delta_stats.interned_implicants,
            "{label}: implicant charges diverge at {workers} workers"
        );
        assert_eq!(
            full_stats.interned_dnfs, delta_stats.interned_dnfs,
            "{label}: interned DNF counts diverge at {workers} workers"
        );
        assert_eq!(
            full_stats.peak_dnf_width, delta_stats.peak_dnf_width,
            "{label}: peak widths diverge at {workers} workers"
        );
        match (&full, &delta) {
            (Ok(full_cond), Ok(delta_cond)) => {
                assert_eq!(
                    full_cond.dnf(),
                    delta_cond.dnf(),
                    "{label}: conditions diverge at {workers} workers"
                );
            }
            (Err(full_cut), Err(delta_cut)) => {
                assert_eq!(
                    full_cut, delta_cut,
                    "{label}: trip reasons diverge at {workers} workers"
                );
            }
            (full_outcome, delta_outcome) => panic!(
                "{label}: full sweep {} but worklist {} at {workers} workers",
                if full_outcome.is_ok() { "completed" } else { "tripped" },
                if delta_outcome.is_ok() { "completed" } else { "tripped" },
            ),
        }
        // Skip accounting: the worklist never evaluates more than the full
        // sweep, and what it skips is exactly what it chose not to evaluate.
        assert!(
            delta_stats.equations_evaluated <= full_stats.equations_evaluated,
            "{label}: worklist evaluated more equations than the full sweep"
        );
        assert_eq!(full_stats.equations_skipped, 0, "{label}: a full sweep must not report skips");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random tableaux, default budget: worklist ≡ full sweep ≡ baseline.
    #[test]
    fn worklist_matches_full_sweep_and_baseline_on_random_tableaux(formula in arb_formula(3)) {
        let budget = ResourceBudget::default();
        let Some(graph) = graph_of(&formula, &budget) else { return Ok(()) };
        check_worklist_against_full_sweep("random", &graph, &budget);
        let baseline = condition_of_graph_baseline(graph.clone(), &budget, Parallelism::Off);
        let (delta, _) = condition_of_graph_budgeted_stats(graph, &budget, Parallelism::Off);
        match (&baseline, &delta) {
            (Ok(base), Ok(worklist)) => {
                prop_assert_eq!(base.dnf(), worklist.dnf(), "baseline and worklist diverge");
                // The baseline now reports its convergence too.
                prop_assert!(base.store_stats().rounds > 0);
                prop_assert_eq!(base.store_stats().equations_skipped, 0);
            }
            (Err(base_cut), Err(delta_cut)) => prop_assert_eq!(base_cut, delta_cut),
            // The interned path completing where the estimate cut gave up is
            // the point of the store rewrite.
            (Err(_), Ok(_)) => {}
            (Ok(_), Err(cut)) => {
                panic!("worklist tripped ({cut}) on a condition the baseline completes")
            }
        }
    }

    /// Random tableaux under random tight implicant caps: the worklist trips
    /// exactly when — and exactly as — the full sweep does.
    #[test]
    fn budget_trips_agree_under_tight_caps(formula in arb_formula(3), cap_raw in any::<u8>()) {
        let cap = usize::from(cap_raw) % 48 + 1;
        let budget = ResourceBudget::default().with_max_implicants(cap);
        let Some(graph) = graph_of(&formula, &budget) else { return Ok(()) };
        check_worklist_against_full_sweep("tight-cap", &graph, &budget);
    }

    /// The Boolean worklist projection agrees with the explicit condition
    /// evaluated at random atom assignments (and with itself on trips).
    #[test]
    fn evaluated_worklist_agrees_with_explicit_condition(
        formula in arb_formula(3),
        seed in any::<u64>(),
    ) {
        let budget = ResourceBudget::default();
        let Some(graph) = graph_of(&formula, &budget) else { return Ok(()) };
        let (explicit, _) =
            condition_of_graph_budgeted_stats(graph.clone(), &budget, Parallelism::Off);
        let Ok(condition) = explicit else { return Ok(()) };
        let atom_true: Vec<bool> =
            (0..graph.edges().len()).map(|e| (seed >> (e % 64)) & 1 == 1).collect();
        let (evaluated, stats) =
            evaluate_condition_at_budgeted_stats(&graph, &atom_true, &budget);
        let answer = evaluated.expect("structural caps cannot trip the Boolean projection");
        prop_assert_eq!(
            answer,
            dnf_at(&condition, &atom_true),
            "Boolean worklist disagrees with the explicit condition"
        );
        prop_assert!(stats.rounds > 0, "the projection must report its rounds");
        prop_assert_eq!(stats.interned_implicants, 0, "the projection interns nothing");
        // And against the preserved PR 5 Boolean full-sweep path: identical
        // answer, strictly no-skip accounting on the anchor, and the
        // worklist never evaluating more equations than the full sweeps.
        let (anchor, anchor_stats) =
            evaluate_condition_at_full_sweep_stats(&graph, &atom_true, &budget);
        prop_assert_eq!(
            answer,
            anchor.expect("the anchor has the same (absent) trip conditions"),
            "Boolean worklist disagrees with the PR 5 full-sweep anchor"
        );
        prop_assert_eq!(anchor_stats.equations_skipped, 0);
        prop_assert!(stats.equations_evaluated <= anchor_stats.equations_evaluated);
    }
}

/// The pattern catalogue — R3–R5, the eventuality chains, the response
/// ladders — through the full differential harness at `Fixed(0/2/4)`.
#[test]
fn worklist_matches_full_sweep_on_pattern_formulas() {
    let mut formulas: Vec<(String, Ltl)> =
        patterns::appendix_b_table().into_iter().map(|(n, f)| (n.to_string(), f)).collect();
    for n in 1..=3 {
        formulas.push((format!("chain{n}"), patterns::eventuality_chain(n)));
    }
    formulas.push(("ladder2".to_string(), patterns::response_ladder(2)));
    formulas.push(("ladder3".to_string(), patterns::response_ladder(3)));
    for (label, formula) in formulas {
        let budget = ResourceBudget::default();
        let graph =
            graph_of(&formula, &budget).unwrap_or_else(|| panic!("{label}: tableau build tripped"));
        check_worklist_against_full_sweep(&label, &graph, &budget);
    }
}

/// Once a component converges it is never re-entered: on ladder3 the
/// worklist engine must actually skip work — strictly positive skip
/// counters, strictly fewer evaluations than the full sweep — while
/// reaching the identical condition.  (The bench-smoke job enforces the
/// same guard on the release build.)
#[test]
fn converged_components_are_skipped_on_ladder3() {
    let budget = ResourceBudget::default();
    let formula = patterns::response_ladder(3);
    let graph = graph_of(&formula, &budget).expect("ladder3 builds under the default budget");
    let (delta, delta_stats) =
        condition_of_graph_budgeted_stats(graph.clone(), &budget, Parallelism::Off);
    let (full, full_stats) =
        condition_of_graph_full_sweep_stats(graph.clone(), &budget, Parallelism::Off);
    assert_eq!(
        delta.expect("ladder3 fits the default budget").dnf(),
        full.expect("ladder3 fits the default budget").dnf(),
    );
    assert!(
        delta_stats.equations_skipped > 0,
        "ladder3 must exercise the skip path, got {delta_stats:?}"
    );
    assert!(
        delta_stats.equations_evaluated < full_stats.equations_evaluated,
        "the worklist must evaluate strictly less than the full sweep \
         ({} vs {})",
        delta_stats.equations_evaluated,
        full_stats.equations_evaluated,
    );
    // The Boolean projection skips on the same structure.  (The all-false
    // assignment forces real iteration — at all-true every equation is
    // trivially ⊤ and each phase converges in its seed round.)
    let atom_true = vec![false; graph.edges().len()];
    let (answer, eval_stats) = evaluate_condition_at_budgeted_stats(&graph, &atom_true, &budget);
    assert!(
        eval_stats.equations_skipped > 0,
        "the Boolean worklist must skip on ladder3 too, got {eval_stats:?}"
    );
    let (anchor, anchor_stats) =
        evaluate_condition_at_full_sweep_stats(&graph, &atom_true, &budget);
    assert_eq!(answer.unwrap(), anchor.unwrap(), "Boolean worklist vs PR 5 anchor on ladder3");
    assert!(
        eval_stats.equations_evaluated < anchor_stats.equations_evaluated,
        "the Boolean worklist must evaluate strictly less than the PR 5 sweeps ({} vs {})",
        eval_stats.equations_evaluated,
        anchor_stats.equations_evaluated,
    );
}
