//! Differential tests for the interned condition store (ISSUE 5).
//!
//! The legacy `BTreeSet`-backed [`Dnf`] is the executable specification:
//! every interned operation — `∧`, `∨`, absorption-on-construction,
//! canonical extraction — must agree with it on random monotone DNFs, the
//! budgeted entry points must trip for the same reason at the same
//! distinct-implicant charge however the work is phrased, and the
//! store-backed condition fixpoint must compute the same condition as the
//! PR 3 baseline wherever neither trips.

use ilogic_temporal::algorithm_b::{condition_of_graph_baseline, condition_of_graph_budgeted};
use ilogic_temporal::dnf::store::ConditionStore;
use ilogic_temporal::dnf::{Dnf, DnfBudget};
use ilogic_temporal::patterns;
use ilogic_temporal::pool::{Exhaustion, Parallelism, ResourceBudget};
use ilogic_temporal::syntax::Ltl;
use ilogic_temporal::tableau::TableauGraph;
use proptest::collection::vec;
use proptest::prelude::*;

/// A random (automatically canonical: absorption happens in `or`/`and`)
/// monotone DNF over a small atom universe — small enough that products
/// collide and absorb, which is exactly the regime the store's shortcuts
/// must not get wrong.
fn dnf_strategy() -> impl Strategy<Value = Dnf> {
    vec(vec(any::<u8>(), 1..4), 0..5).prop_map(|implicants| {
        implicants.into_iter().fold(Dnf::bottom(), |acc, atoms| {
            let implicant = atoms
                .into_iter()
                .fold(Dnf::top(), |imp, a| imp.and(&Dnf::atom(usize::from(a) % 12)));
            acc.or(&implicant)
        })
    })
}

/// Runs `op` against a fresh unbounded store and hands back its explicit
/// result.
fn via_store(op: impl FnOnce(&mut ConditionStore, &DnfBudget) -> Option<Dnf>) -> Dnf {
    let mut store = ConditionStore::new();
    let budget = DnfBudget::unbounded();
    op(&mut store, &budget).expect("unbounded store ops cannot trip")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Interning then extracting is the identity on canonical DNFs.
    #[test]
    fn interning_round_trips(dnf in dnf_strategy()) {
        let mut store = ConditionStore::new();
        let budget = DnfBudget::unbounded();
        let id = store.intern_dnf(&dnf, &budget).expect("unbounded");
        prop_assert_eq!(store.extract(id), dnf.clone());
        // Re-interning the extraction lands on the same id: canonicity.
        let again = store.intern_dnf(&store.extract(id).clone(), &budget).expect("unbounded");
        prop_assert_eq!(id, again);
    }

    /// Store conjunction ≡ legacy conjunction (absorption included).
    #[test]
    fn store_and_agrees_with_legacy(a in dnf_strategy(), b in dnf_strategy()) {
        let expected = a.and(&b);
        let got = via_store(|store, budget| {
            let ia = store.intern_dnf(&a, budget)?;
            let ib = store.intern_dnf(&b, budget)?;
            let result = store.and(ia, ib, budget)?;
            Some(store.extract(result))
        });
        prop_assert_eq!(got, expected);
    }

    /// Store disjunction ≡ legacy disjunction (absorption included).
    #[test]
    fn store_or_agrees_with_legacy(a in dnf_strategy(), b in dnf_strategy()) {
        let expected = a.or(&b);
        let got = via_store(|store, budget| {
            let ia = store.intern_dnf(&a, budget)?;
            let ib = store.intern_dnf(&b, budget)?;
            let result = store.or(ia, ib);
            Some(store.extract(result))
        });
        prop_assert_eq!(got, expected);
    }

    /// `Dnf::all_bounded` (through the store) ≡ the unbudgeted legacy fold,
    /// and ≡ the estimate-cut baseline wherever the baseline answers.
    #[test]
    fn bounded_products_agree_with_legacy(terms in vec(dnf_strategy(), 0..5)) {
        let expected = Dnf::all(terms.clone());
        let unbounded = DnfBudget::unbounded();
        prop_assert_eq!(
            Dnf::all_bounded(terms.clone(), &unbounded),
            Some(expected.clone())
        );
        let baseline_budget = DnfBudget::unbounded();
        prop_assert_eq!(
            Dnf::all_bounded_estimated(terms.clone(), &baseline_budget),
            Some(expected)
        );
    }

    /// Budget-trip equivalence: for any term list and any cap, the interned
    /// product either completes identically to the unbudgeted fold or trips
    /// with `Exhaustion::Implicants` — and whether it trips is a pure
    /// function of the distinct-implicant charge, so re-running the same
    /// product against the same cap reproduces the same reason at the same
    /// charge.
    #[test]
    fn budget_trips_are_deterministic(terms in vec(dnf_strategy(), 0..5), cap_raw in any::<u8>()) {
        let cap = usize::from(cap_raw) % 24;
        let first = DnfBudget::new(cap);
        let first_result = Dnf::all_bounded(terms.clone(), &first);
        let second = DnfBudget::new(cap);
        let second_result = Dnf::all_bounded(terms.clone(), &second);
        prop_assert_eq!(first_result.clone(), second_result);
        prop_assert_eq!(first.charged(), second.charged(), "same charge on both runs");
        match first_result {
            Some(result) => {
                prop_assert_eq!(result, Dnf::all(terms));
                prop_assert!(!first.tripped());
                prop_assert!(first.charged() <= cap);
            }
            None => {
                prop_assert!(first.tripped());
                prop_assert_eq!(first.exhaustion(), Some(Exhaustion::Implicants));
            }
        }
    }

    /// A looser cap never changes a completed answer (budget monotonicity at
    /// the DNF level).
    #[test]
    fn looser_caps_preserve_answers(terms in vec(dnf_strategy(), 0..4), cap_raw in any::<u8>()) {
        let cap = usize::from(cap_raw) % 16;
        let tight = DnfBudget::new(cap);
        let tight_result = Dnf::all_bounded(terms.clone(), &tight);
        let loose = DnfBudget::new(cap.saturating_mul(4).saturating_add(16));
        let loose_result = Dnf::all_bounded(terms, &loose);
        if let Some(result) = tight_result {
            prop_assert_eq!(Some(result), loose_result);
        }
    }
}

/// The store-backed condition fixpoint and the PR 3 `BTreeSet` baseline
/// compute the same condition (same implicants, same top/bottom answers) on
/// the tractable pattern formulas, at every worker count.
#[test]
fn store_fixpoint_matches_baseline_on_pattern_formulas() {
    let mut formulas: Vec<(String, Ltl)> =
        patterns::appendix_b_table().into_iter().map(|(n, f)| (n.to_string(), f)).collect();
    for n in 1..=3 {
        formulas.push((format!("chain{n}"), patterns::eventuality_chain(n)));
    }
    formulas.push(("ladder2".to_string(), patterns::response_ladder(2)));
    for (label, formula) in formulas {
        let graph = |label: &str| {
            TableauGraph::try_build_budgeted(
                &formula.clone().not(),
                &ResourceBudget::default(),
                Parallelism::Off,
            )
            .unwrap_or_else(|cut| panic!("{label}: tableau build tripped {cut}"))
        };
        let baseline = condition_of_graph_baseline(
            graph(&label),
            &ResourceBudget::default(),
            Parallelism::Off,
        );
        for workers in [0usize, 2, 4] {
            let parallelism =
                if workers == 0 { Parallelism::Off } else { Parallelism::Fixed(workers) };
            let store =
                condition_of_graph_budgeted(graph(&label), &ResourceBudget::default(), parallelism);
            match (&baseline, &store) {
                (Ok(base), Ok(interned)) => {
                    assert_eq!(
                        base.dnf(),
                        interned.dnf(),
                        "{label}: conditions diverge at {workers} workers"
                    );
                    assert!(
                        interned.store_stats().interned_implicants > 0,
                        "{label}: the interned path must report its counters"
                    );
                }
                (Err(base_cut), Err(store_cut)) => {
                    // Both tripped: the *reasons* agree even though the two
                    // budgets measure different quantities.
                    assert_eq!(base_cut, store_cut, "{label} at {workers} workers");
                }
                // The interned path completing where the estimate cut gave up
                // is the point of the rewrite.
                (Err(_), Ok(_)) => {}
                (Ok(_), Err(cut)) => panic!(
                    "{label}: the interned fixpoint tripped ({cut}) at {workers} workers on a \
                     condition the BTreeSet baseline completes"
                ),
            }
        }
    }
}
