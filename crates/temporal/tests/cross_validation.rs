//! Property-based cross-validation of the Appendix B decision procedures
//! against the concrete lasso semantics, plus agreement between Algorithm A
//! (with the propositional theory) and Algorithm B on pure temporal formulas.

use proptest::prelude::*;

use ilogic_temporal::algorithm_a::AlgorithmA;
use ilogic_temporal::algorithm_b::{AlgorithmB, Decision};
use ilogic_temporal::prelude::*;

const PROPS: [&str; 2] = ["P", "Q"];

fn arb_formula(depth: u32) -> BoxedStrategy<Ltl> {
    let leaf =
        prop_oneof![Just(Ltl::prop("P")), Just(Ltl::prop("Q")), Just(Ltl::True), Just(Ltl::False),];
    leaf.prop_recursive(depth, 16, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(Ltl::not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.clone().prop_map(Ltl::next),
            inner.clone().prop_map(Ltl::always),
            inner.clone().prop_map(Ltl::eventually),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.until(b)),
        ]
    })
    .boxed()
}

fn arb_trace(max_len: usize) -> impl Strategy<Value = TlTrace> {
    (
        proptest::collection::vec(
            proptest::collection::vec(any::<bool>(), PROPS.len()),
            1..=max_len,
        ),
        any::<proptest::sample::Index>(),
    )
        .prop_map(|(rows, loop_index)| {
            let states: Vec<TlState> = rows
                .into_iter()
                .map(|row| {
                    let mut s = TlState::new();
                    for (i, value) in row.into_iter().enumerate() {
                        s.set_prop(PROPS[i], value);
                    }
                    s
                })
                .collect();
            let loop_start = loop_index.index(states.len());
            TlTrace::lasso(states, loop_start)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any lasso model found by the concrete semantics certifies satisfiability
    /// in the tableau, and a tableau-unsatisfiable formula has no lasso model.
    #[test]
    fn semantic_models_imply_tableau_satisfiability(formula in arb_formula(3), trace in arb_trace(4)) {
        if trace.eval(&formula) {
            prop_assert!(satisfiable_pure(&formula), "model exists for {formula}");
        }
    }

    /// A formula proved valid by the tableau holds on every generated lasso.
    #[test]
    fn valid_formulas_hold_on_all_lassos(formula in arb_formula(3), trace in arb_trace(4)) {
        if valid_pure(&formula) {
            prop_assert!(trace.eval(&formula), "valid formula fails on a lasso: {formula}");
        }
    }

    /// Algorithm A (propositional theory) and Algorithm B agree on validity of
    /// pure temporal formulas.
    #[test]
    fn algorithm_a_and_b_agree(formula in arb_formula(2)) {
        let theory = PropositionalTheory::new();
        let a = AlgorithmA::new(&theory).valid(&formula);
        let b = AlgorithmB::new(&theory, VarSpec::all_state()).decide(&formula);
        prop_assert_eq!(b, if a { Decision::Valid } else { Decision::NotValid });
    }

    /// Duality: exactly one of A and ¬A is satisfiable unless both are
    /// (contingent formulas), but never neither.
    #[test]
    fn formula_or_negation_is_satisfiable(formula in arb_formula(3)) {
        prop_assert!(satisfiable_pure(&formula) || satisfiable_pure(&formula.clone().not()));
    }
}
