//! Ring leader election (Chang–Roberts), a PODC-venue case study.
//!
//! `n` nodes sit on a unidirectional ring; each starts by sending its own
//! (distinct) id clockwise.  A node receiving an id larger than its own
//! forwards it, discards a smaller one, and claims leadership when its own id
//! comes back around — the classic argument being that only the maximum id
//! survives a full lap.  The interval-logic rendering of the correctness
//! properties (a unique, stable leader, holding the maximum id) is in
//! [`ring_election_spec`]/[`leader_uniqueness_theorem`], checked both over
//! exhaustively explored runs and over randomly scheduled simulations.
//!
//! The broken variant ([`RingModel::broken`]) skips the id comparison
//! entirely — a node takes *any* arriving token for its own returning
//! candidacy — so several nodes claim leadership, which the explorer catches
//! with a concrete interleaving.

use std::collections::BTreeMap;

use ilogic_core::dsl::*;
use ilogic_core::prelude::*;

use crate::explore::Model;

/// The Chang–Roberts election on a unidirectional ring as an explorable
/// transition system.
#[derive(Clone, Debug)]
pub struct RingModel {
    /// Node ids by ring position (`ids[i]` sends to position `i + 1 mod n`);
    /// must be pairwise distinct.
    pub ids: Vec<u64>,
    /// Reproduces the broken variant: nodes skip the id comparison and claim
    /// leadership on any arriving token.
    pub skip_comparison: bool,
}

/// A global election state.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct RingState {
    /// Tokens in flight towards each position (sorted multiset).
    pub channels: Vec<Vec<u64>>,
    /// Whether each position has injected its own candidacy yet.
    pub started: Vec<bool>,
    /// Whether each position has claimed leadership.
    pub leader: Vec<bool>,
}

impl RingModel {
    /// The correct election over the given ring of distinct ids.
    pub fn correct(ids: Vec<u64>) -> RingModel {
        RingModel::with_flags(ids, false)
    }

    /// The broken variant that claims leadership on any arriving token.
    pub fn broken(ids: Vec<u64>) -> RingModel {
        RingModel::with_flags(ids, true)
    }

    fn with_flags(ids: Vec<u64>, skip_comparison: bool) -> RingModel {
        assert!(ids.len() >= 2, "a ring election needs at least two nodes");
        let mut seen = ids.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), ids.len(), "ring ids must be pairwise distinct");
        RingModel { ids, skip_comparison }
    }

    /// Number of nodes on the ring.
    pub fn nodes(&self) -> usize {
        self.ids.len()
    }

    /// Safety: at most one node has claimed leadership.
    pub fn at_most_one_leader(state: &RingState) -> bool {
        state.leader.iter().filter(|l| **l).count() <= 1
    }

    /// Safety: any claimed leader holds the maximum id of the ring.
    pub fn leader_is_maximum(&self, state: &RingState) -> bool {
        let max = *self.ids.iter().max().expect("ring is non-empty");
        state.leader.iter().zip(&self.ids).all(|(claimed, id)| !claimed || *id == max)
    }
}

impl Model for RingModel {
    type State = RingState;

    fn initial(&self) -> RingState {
        let n = self.nodes();
        RingState { channels: vec![Vec::new(); n], started: vec![false; n], leader: vec![false; n] }
    }

    fn successors(&self, state: &RingState) -> Vec<(String, RingState)> {
        let n = self.nodes();
        let mut result = Vec::new();
        for i in 0..n {
            if !state.started[i] {
                // Inject the node's own candidacy clockwise.
                let mut next = state.clone();
                next.started[i] = true;
                let slot = next.channels[(i + 1) % n].binary_search(&self.ids[i]).unwrap_err();
                next.channels[(i + 1) % n].insert(slot, self.ids[i]);
                result.push((format!("start({i})"), next));
            }
            // Deliver each distinct pending token (the channel is a sorted
            // multiset, so deduplicating adjacent entries keeps the successor
            // set canonical).
            let mut previous = None;
            for (slot, &token) in state.channels[i].iter().enumerate() {
                if previous == Some(token) {
                    continue;
                }
                previous = Some(token);
                let mut next = state.clone();
                next.channels[i].remove(slot);
                if self.skip_comparison || token == self.ids[i] {
                    // Own id back around (or the broken variant's blanket
                    // claim): leadership.
                    next.leader[i] = true;
                    result.push((format!("claim({i},{token})"), next));
                } else if token > self.ids[i] {
                    let slot =
                        next.channels[(i + 1) % n].binary_search(&token).unwrap_or_else(|e| e);
                    next.channels[(i + 1) % n].insert(slot, token);
                    result.push((format!("forward({i},{token})"), next));
                } else {
                    result.push((format!("discard({i},{token})"), next));
                }
            }
        }
        result
    }

    fn observe(&self, state: &RingState) -> State {
        let mut observed = State::new();
        for i in 0..self.nodes() {
            if state.leader[i] {
                observed.insert(Prop::with_args("leader", [i as i64]));
            }
            if !state.channels[i].is_empty() {
                observed.insert(Prop::with_args("tok", [i as i64]));
            }
        }
        observed
    }
}

/// The interval-logic specification of the election.
///
/// * `Init` — nobody is a leader before the protocol runs;
/// * `Unique` — two distinct positions never both claim leadership;
/// * `Stable` — from the interval in which `leader(i)` is raised, it stays
///   raised: a leader never abdicates.
pub fn ring_election_spec() -> Spec {
    let leader = |i: &str| prop_args("leader", vec![var(i)]);
    let unique = data_ne("i", "j").implies(leader("i").and(leader("j")).not().always());
    let stable = always(leader("i")).within(fwd_from(event(leader("i")))).always();
    Spec::new("ring-election")
        .init("Init", leader("m").not())
        .axiom("Unique", unique)
        .axiom("Stable", stable)
}

/// The uniqueness property alone: `i ≠ j ⊃ □¬(leader(i) ∧ leader(j))`.
pub fn leader_uniqueness_theorem() -> Formula {
    let leader = |i: &str| prop_args("leader", vec![var(i)]);
    data_ne("i", "j").implies(leader("i").and(leader("j")).not().always())
}

fn data_ne(a: &str, b: &str) -> Formula {
    Formula::Pred(Pred::cmp(Expr::data(a), CmpOp::Ne, Expr::data(b)))
}

/// Counts, over every complete run of the model, how often each node ends up
/// leader — a distribution the tests use to show the *correct* ring elects
/// exactly the maximum id on every schedule.
pub fn leadership_census(model: &RingModel, max_runs: usize) -> BTreeMap<usize, usize> {
    let mut census = BTreeMap::new();
    for run in crate::explore::collect_runs(model, Default::default(), max_runs) {
        let last = run.states().last().expect("runs are non-empty");
        for i in 0..model.nodes() {
            if last.holds(&Prop::with_args("leader", [i as i64])) {
                *census.entry(i).or_insert(0) += 1;
            }
        }
    }
    census
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{collect_runs, explore, explore_backend, random_run, ExploreLimits};
    use ilogic_core::spec::close_free_variables;

    #[test]
    fn correct_ring_elects_at_most_one_leader_exhaustively() {
        let model = RingModel::correct(vec![2, 1, 3]);
        let report = explore(&model, ExploreLimits::default(), RingModel::at_most_one_leader);
        assert!(report.verified(), "violation: {:?}", report.violation.map(|v| v.actions));
        assert!(report.states > 20);
    }

    #[test]
    fn any_claimed_leader_holds_the_maximum_id() {
        let model = RingModel::correct(vec![4, 2, 7, 1]);
        let report = explore(&model, ExploreLimits::default(), |s| model.leader_is_maximum(s));
        assert!(report.verified(), "violation: {:?}", report.violation.map(|v| v.actions));
    }

    #[test]
    fn every_complete_run_elects_exactly_the_maximum() {
        let model = RingModel::correct(vec![2, 1, 3]);
        let census = leadership_census(&model, 512);
        // Position 2 holds the maximum id 3; no other position ever leads.
        assert_eq!(census.keys().copied().collect::<Vec<_>>(), vec![2]);
        assert!(census[&2] > 0);
    }

    #[test]
    fn broken_ring_yields_a_multi_leader_counterexample() {
        let model = RingModel::broken(vec![2, 1, 3]);
        let report = explore(&model, ExploreLimits::default(), RingModel::at_most_one_leader);
        let violation = report.violation.expect("the broken variant must be caught");
        assert!(violation.actions.iter().filter(|a| a.starts_with("claim")).count() >= 2);
    }

    #[test]
    fn explored_runs_satisfy_the_election_spec() {
        let model = RingModel::correct(vec![2, 1, 3]);
        let runs = collect_runs(&model, ExploreLimits::default(), 64);
        assert!(!runs.is_empty());
        let spec = ring_election_spec();
        let session = Session::new();
        for trace in &runs {
            let report = session.check_spec(&spec, trace);
            assert!(report.passed(), "spec violated on run {trace}: {:?}", report.failures());
        }
    }

    #[test]
    fn uniqueness_theorem_checked_by_every_applicable_backend() {
        let theorem = close_free_variables(&leader_uniqueness_theorem());
        let session = Session::new();

        // Explore: holds over every run of the correct model...
        let good = explore_backend(&RingModel::correct(vec![2, 1, 3]), Default::default(), 128);
        let report = session.check(CheckRequest::new(theorem.clone()).with_backend(good));
        assert_eq!(report.backend, "explore");
        assert!(report.verdict.passed(), "{}", report.verdict);

        // ...and is violated, with a concrete run, on the broken one.
        let bad = explore_backend(&RingModel::broken(vec![2, 1, 3]), Default::default(), 128);
        let report = session.check(CheckRequest::new(theorem.clone()).with_backend(bad));
        assert!(report.verdict.counterexample().is_some());

        // Trace backend: a random schedule of the correct ring conforms.
        let trace = random_run(&RingModel::correct(vec![2, 1, 3]), 64, 11);
        assert!(session.check(CheckRequest::new(theorem).on_trace(&trace)).verdict.passed());
    }

    #[test]
    fn uniqueness_is_refuted_identically_by_bounded_and_decide() {
        // The propositional rendering of uniqueness for two fixed positions
        // is *not valid* (nothing forces the props apart in an arbitrary
        // computation): Bounded finds a counterexample computation, and
        // Decide's refutation sweep — the same enumeration over the same
        // alphabet — must land on the identical one.
        let unique = prop("lead_a").and(prop("lead_b")).not().always();
        let session = Session::new();
        let bounded =
            session.check(CheckRequest::new(unique.clone()).bounded(vec!["lead_a", "lead_b"], 4));
        let decide = session.check(CheckRequest::new(unique).decide());
        let bounded_cx = bounded.verdict.counterexample().expect("bounded refutes");
        let decide_cx = decide.verdict.counterexample().expect("decide refutes");
        assert_eq!(bounded_cx, decide_cx, "the two refutations must be bit-identical");
    }

    #[test]
    fn random_schedules_never_break_the_spec() {
        let model = RingModel::correct(vec![5, 3, 8, 1]);
        let spec = ring_election_spec();
        let session = Session::new();
        for seed in 0..10 {
            let trace = random_run(&model, 96, seed);
            let report = session.check_spec(&spec, &trace);
            assert!(report.passed(), "seed {seed}: {:?}", report.failures());
        }
    }
}
