//! Self-timed systems (Chapter 6): the request/acknowledge protocol and the
//! two-user arbiter.
//!
//! Signals are modelled as Boolean propositions (`R`, `A`, `UR1`, `TA2`, ...)
//! that stay up until explicitly lowered.  The simulators step the modules with
//! randomized delays, which exercises the speed-independence the self-timed
//! discipline is designed for, and record one trace state per signal change.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ilogic_core::prelude::*;

/// Configuration of a request/acknowledge channel simulation.
#[derive(Clone, Copy, Debug)]
pub struct ChannelWorkload {
    /// Number of complete request/acknowledge cycles.
    pub cycles: usize,
    /// Maximum number of idle steps inserted between signal changes.
    pub max_delay: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ChannelWorkload {
    fn default() -> ChannelWorkload {
        ChannelWorkload { cycles: 4, max_delay: 2, seed: 5 }
    }
}

/// Simulates a single requester/responder pair obeying the four-phase
/// request/acknowledge protocol of §6.1 and records the `R`/`A` signal trace.
pub fn simulate_request_ack(workload: ChannelWorkload) -> Trace {
    let mut rng = StdRng::seed_from_u64(workload.seed);
    let mut builder = TraceBuilder::new();
    builder.commit(); // Init: ¬R ∧ ¬A

    let r = Prop::plain("R");
    let a = Prop::plain("A");
    for _ in 0..workload.cycles {
        idle(&mut builder, &mut rng, workload.max_delay);
        builder.assert_prop(r.clone());
        builder.commit(); // raise R
        idle(&mut builder, &mut rng, workload.max_delay);
        builder.assert_prop(a.clone());
        builder.commit(); // raise A (request acknowledged)
        idle(&mut builder, &mut rng, workload.max_delay);
        builder.retract_prop(&r);
        builder.commit(); // lower R
        idle(&mut builder, &mut rng, workload.max_delay);
        builder.retract_prop(&a);
        builder.commit(); // lower A: a new request may now begin
    }
    builder.commit();
    builder.finish()
}

/// Simulates a requester that violates the protocol by withdrawing its request
/// before the acknowledgment arrives (used to show the specification rejects it).
pub fn simulate_hasty_requester(workload: ChannelWorkload) -> Trace {
    let mut builder = TraceBuilder::new();
    builder.commit();
    let r = Prop::plain("R");
    let a = Prop::plain("A");
    for _ in 0..workload.cycles.max(1) {
        builder.assert_prop(r.clone());
        builder.commit();
        builder.retract_prop(&r); // withdrawn before A was ever raised
        builder.commit();
        builder.assert_prop(a.clone());
        builder.commit();
        builder.retract_prop(&a);
        builder.commit();
    }
    builder.finish()
}

fn idle(builder: &mut TraceBuilder, rng: &mut StdRng, max_delay: usize) {
    for _ in 0..rng.gen_range(0..=max_delay) {
        builder.commit();
    }
}

/// Configuration of an arbiter simulation.
#[derive(Clone, Copy, Debug)]
pub struct ArbiterWorkload {
    /// Number of resource acquisitions per user.
    pub rounds: usize,
    /// Maximum number of idle steps between signal changes.
    pub max_delay: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ArbiterWorkload {
    fn default() -> ArbiterWorkload {
        ArbiterWorkload { rounds: 3, max_delay: 1, seed: 9 }
    }
}

/// Simulates the arbiter of §6.2 serving two user modules and records the trace
/// of the signals `UR1/UA1`, `UR2/UA2`, `TR1/TA1`, `TR2/TA2`, `RMR/RMA`.
///
/// The arbiter grants access to one user at a time: it raises the transfer
/// request `TRi`, waits for `TAi`, then raises the resource request `RMR`,
/// waits for `RMA`, and only then acknowledges the user with `UAi`; releases
/// proceed in the opposite order, following the request/acknowledge discipline
/// on every signal pair.
pub fn simulate_arbiter(workload: ArbiterWorkload) -> Trace {
    let mut rng = StdRng::seed_from_u64(workload.seed);
    let mut builder = TraceBuilder::new();
    builder.commit(); // Init: all user requests low

    // Outstanding demand per user.
    let mut remaining = [workload.rounds, workload.rounds];
    let mut waiting: Vec<usize> = Vec::new();
    while remaining[0] > 0 || remaining[1] > 0 || !waiting.is_empty() {
        // Users raise their requests at random moments.
        for (user, rem) in remaining.iter().enumerate() {
            if *rem > 0 && !waiting.contains(&user) && rng.gen_bool(0.7) {
                builder.assert_prop(Prop::plain(format!("UR{}", user + 1)));
                builder.commit();
                waiting.push(user);
            }
        }
        idle(&mut builder, &mut rng, workload.max_delay);
        // The arbiter serves the longest-waiting user.
        let Some(user) = waiting.first().copied() else { continue };
        let i = user + 1;
        let tr = Prop::plain(format!("TR{i}"));
        let ta = Prop::plain(format!("TA{i}"));
        let ur = Prop::plain(format!("UR{i}"));
        let ua = Prop::plain(format!("UA{i}"));
        let rmr = Prop::plain("RMR");
        let rma = Prop::plain("RMA");

        builder.assert_prop(tr.clone());
        builder.commit(); // request the transfer module
        idle(&mut builder, &mut rng, workload.max_delay);
        builder.assert_prop(ta.clone());
        builder.commit(); // transfer module acknowledges
        builder.assert_prop(rmr.clone());
        builder.commit(); // request the resource
        idle(&mut builder, &mut rng, workload.max_delay);
        builder.assert_prop(rma.clone());
        builder.commit(); // resource acknowledges: both acks now up
        builder.assert_prop(ua.clone());
        builder.commit(); // acknowledge the user
        idle(&mut builder, &mut rng, workload.max_delay);

        // Release in the reverse order, completing every handshake.
        builder.retract_prop(&ur);
        builder.commit();
        builder.retract_prop(&ua);
        builder.commit();
        builder.retract_prop(&rmr);
        builder.commit();
        builder.retract_prop(&rma);
        builder.commit();
        builder.retract_prop(&tr);
        builder.commit();
        builder.retract_prop(&ta);
        builder.commit();

        waiting.remove(0);
        remaining[user] -= 1;
    }
    builder.commit();
    builder.finish()
}

/// A broken arbiter that acknowledges the user before the resource module has
/// acknowledged, violating arbiter axiom A1.
pub fn simulate_premature_arbiter() -> Trace {
    let mut builder = TraceBuilder::new();
    builder.commit();
    builder.assert_prop(Prop::plain("UR1"));
    builder.commit();
    builder.assert_prop(Prop::plain("TR1"));
    builder.commit();
    builder.assert_prop(Prop::plain("UA1")); // premature acknowledgment
    builder.commit();
    builder.assert_prop(Prop::plain("TA1"));
    builder.commit();
    builder.assert_prop(Prop::plain("RMR"));
    builder.commit();
    builder.assert_prop(Prop::plain("RMA"));
    builder.commit();
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_ack_signals_alternate() {
        let trace = simulate_request_ack(ChannelWorkload::default());
        // R is never lowered while A is still low after being requested:
        // check directly that in every state where A holds, R held at the
        // moment A was raised (simple sanity independent of the spec).
        assert!(trace.len() > 8);
        let ev = Evaluator::new(&trace);
        // Once R rises, A eventually rises.
        use ilogic_core::dsl::*;
        assert!(ev.check(&occurs(event(prop("A"))).within(fwd_from(event(prop("R"))))));
    }

    #[test]
    fn arbiter_never_grants_both_transfers() {
        let trace = simulate_arbiter(ArbiterWorkload::default());
        for state in trace.states() {
            assert!(
                !(state.holds(&Prop::plain("TR1")) && state.holds(&Prop::plain("TR2"))),
                "both transfer requests up simultaneously"
            );
        }
    }

    #[test]
    fn arbiter_serves_both_users() {
        let trace = simulate_arbiter(ArbiterWorkload { rounds: 2, max_delay: 1, seed: 2 });
        let served1 = trace.states().iter().any(|s| s.holds(&Prop::plain("UA1")));
        let served2 = trace.states().iter().any(|s| s.holds(&Prop::plain("UA2")));
        assert!(served1 && served2);
    }

    #[test]
    fn hasty_requester_differs_from_correct_channel() {
        let trace = simulate_hasty_requester(ChannelWorkload::default());
        // R goes down before A ever rises somewhere in the trace.
        let mut seen_r_without_a_then_drop = false;
        let mut r_up_without_a = false;
        for state in trace.states() {
            let r = state.holds(&Prop::plain("R"));
            let a = state.holds(&Prop::plain("A"));
            if r && !a {
                r_up_without_a = true;
            } else if !r && r_up_without_a && !a {
                seen_r_without_a_then_drop = true;
            }
        }
        assert!(seen_r_without_a_then_drop);
    }
}
