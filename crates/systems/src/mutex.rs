//! Distributed mutual exclusion (Chapter 8).
//!
//! Each process `i` signals its intention to enter the critical section by
//! setting the shared flag `x(i)`, then inspects the other processes' flags one
//! at a time; it enters the critical section only after having observed every
//! other flag to be false, and abandons its claim (resetting `x(i)`) as soon as
//! it observes a competing flag.  This is exactly the minimal discipline the
//! specification of Figure 8-1 constrains: every entry of the critical section
//! by `i` is preceded by a setting of `x(i)` that remains up, within which every
//! other `x(j)` has been observed false.
//!
//! The simulator interleaves one atomic action per trace state, driven by a
//! seeded RNG, so different seeds yield different contention patterns.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ilogic_core::prelude::*;

/// Configuration of a mutual-exclusion simulation.
#[derive(Clone, Copy, Debug)]
pub struct MutexWorkload {
    /// Number of processes.
    pub processes: usize,
    /// Number of critical-section entries each process performs.
    pub entries: usize,
    /// Number of states a process remains in the critical section.
    pub cs_duration: usize,
    /// RNG seed controlling the interleaving.
    pub seed: u64,
}

impl Default for MutexWorkload {
    fn default() -> MutexWorkload {
        MutexWorkload { processes: 3, entries: 2, cs_duration: 2, seed: 13 }
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Phase {
    Idle,
    /// Flag set; indices of the other processes still to be observed false.
    Checking(Vec<usize>),
    /// In the critical section for the given number of remaining states.
    Critical(usize),
    Done,
}

/// Simulates the algorithm and records the trace of the `x(i)` and `cs(i)` predicates.
pub fn simulate(workload: MutexWorkload) -> Trace {
    assert!(workload.processes >= 2, "mutual exclusion needs at least two processes");
    let n = workload.processes;
    let mut rng = StdRng::seed_from_u64(workload.seed);
    let mut builder = TraceBuilder::new();
    builder.commit(); // Init: ∀m ¬x(m)

    let mut phase: Vec<Phase> = vec![Phase::Idle; n];
    let mut remaining: Vec<usize> = vec![workload.entries; n];
    let mut flags: Vec<bool> = vec![false; n];

    let x = |i: usize| Prop::with_args("x", [i as i64]);
    let cs = |i: usize| Prop::with_args("cs", [i as i64]);

    let mut guard = 0usize;
    while phase.iter().any(|p| *p != Phase::Done) && guard < 10_000 {
        guard += 1;
        // Pick a process with something to do.
        let candidates: Vec<usize> = (0..n).filter(|&i| phase[i] != Phase::Done).collect();
        let i = candidates[rng.gen_range(0..candidates.len())];
        match phase[i].clone() {
            Phase::Idle => {
                if remaining[i] == 0 {
                    phase[i] = Phase::Done;
                    continue;
                }
                if rng.gen_bool(0.7) {
                    // Signal the intention to enter.
                    flags[i] = true;
                    builder.assert_prop(x(i));
                    builder.commit();
                    let others: Vec<usize> = (0..n).filter(|&j| j != i).collect();
                    phase[i] = Phase::Checking(others);
                } else {
                    builder.commit(); // an idle step
                }
            }
            Phase::Checking(mut to_check) => {
                let Some(&j) = to_check.first() else {
                    // All other flags were observed false: enter the critical section.
                    builder.assert_prop(cs(i));
                    builder.commit();
                    phase[i] = Phase::Critical(workload.cs_duration);
                    continue;
                };
                // Observe x(j); the observation itself takes one state.
                builder.commit();
                if flags[j] {
                    // Abandon the claim and retry later.
                    flags[i] = false;
                    builder.retract_prop(&x(i));
                    builder.commit();
                    phase[i] = Phase::Idle;
                } else {
                    to_check.remove(0);
                    phase[i] = Phase::Checking(to_check);
                }
            }
            Phase::Critical(steps) => {
                if steps > 0 {
                    builder.commit();
                    phase[i] = Phase::Critical(steps - 1);
                } else {
                    // Leave the critical section, then relinquish the claim.
                    builder.retract_prop(&cs(i));
                    builder.commit();
                    flags[i] = false;
                    builder.retract_prop(&x(i));
                    builder.commit();
                    remaining[i] -= 1;
                    phase[i] = if remaining[i] == 0 { Phase::Done } else { Phase::Idle };
                }
            }
            Phase::Done => {}
        }
    }
    builder.commit();
    builder.finish()
}

/// A deliberately broken variant in which processes skip the inspection of the
/// other flags, so two processes can be in the critical section simultaneously.
pub fn simulate_broken(processes: usize) -> Trace {
    assert!(processes >= 2);
    let mut builder = TraceBuilder::new();
    builder.commit();
    // Both process 0 and process 1 barge straight into the critical section.
    for i in 0..2usize {
        builder.assert_prop(Prop::with_args("x", [i as i64]));
        builder.commit();
    }
    for i in 0..2usize {
        builder.assert_prop(Prop::with_args("cs", [i as i64]));
        builder.commit();
    }
    for i in 0..2usize {
        builder.retract_prop(&Prop::with_args("cs", [i as i64]));
        builder.retract_prop(&Prop::with_args("x", [i as i64]));
        builder.commit();
    }
    builder.finish()
}

/// `true` if no two distinct processes are ever simultaneously in the critical section.
pub fn mutual_exclusion_holds(trace: &Trace, processes: usize) -> bool {
    for state in trace.states() {
        let inside: Vec<usize> =
            (0..processes).filter(|&i| state.holds(&Prop::with_args("cs", [i as i64]))).collect();
        if inside.len() > 1 {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_guarantees_mutual_exclusion_across_seeds() {
        for seed in 0..10 {
            let workload = MutexWorkload { seed, ..MutexWorkload::default() };
            let trace = simulate(workload);
            assert!(
                mutual_exclusion_holds(&trace, workload.processes),
                "mutual exclusion violated for seed {seed}"
            );
        }
    }

    #[test]
    fn every_process_eventually_enters() {
        let workload = MutexWorkload { processes: 3, entries: 1, cs_duration: 1, seed: 4 };
        let trace = simulate(workload);
        for i in 0..workload.processes {
            assert!(
                trace.states().iter().any(|s| s.holds(&Prop::with_args("cs", [i as i64]))),
                "process {i} never entered"
            );
        }
    }

    #[test]
    fn broken_variant_violates_mutual_exclusion() {
        let trace = simulate_broken(2);
        assert!(!mutual_exclusion_holds(&trace, 2));
    }

    #[test]
    fn flags_cover_critical_sections() {
        let trace = simulate(MutexWorkload::default());
        for state in trace.states() {
            for i in 0..3i64 {
                if state.holds(&Prop::with_args("cs", [i])) {
                    assert!(state.holds(&Prop::with_args("x", [i])), "cs({i}) without x({i})");
                }
            }
        }
    }
}
