//! The interval-logic specifications of Chapters 5–8, rendered with the
//! `ilogic-core` DSL.
//!
//! Each function documents which figure (and which clause of it) the Rust
//! rendering corresponds to.  Two conventions of the report are made explicit:
//!
//! * free data variables of a clause are universally quantified (the report's
//!   "for all a and b ..."), which [`ilogic_core::spec::Spec::check`] performs
//!   by instantiating them over the values occurring in the trace;
//! * the report's next-call parameter-binding convention (`atO·(a)`) and the
//!   complemented sequence-number bar (`v̄`) are rendered by enumerating the
//!   one-bit sequence-number domain `{0, 1}` explicitly, producing one clause
//!   per bit where the figure writes a single parameterized clause.
//!
//! Clauses whose figure text is an outer-level axiom asserted "from a point at
//! which a request has been reset" (Figure 6-2) are wrapped in `□` so that they
//! constrain every protocol cycle of the recorded computation.

use ilogic_core::dsl::*;
use ilogic_core::prelude::*;

fn evt(name: &str) -> IntervalTerm {
    event(prop(name))
}

fn evt_args(name: &str, args: Vec<Arg>) -> IntervalTerm {
    event(prop_args(name, args))
}

fn data_ne(a: &str, b: &str) -> Formula {
    Formula::Pred(Pred::cmp(Expr::data(a), CmpOp::Ne, Expr::data(b)))
}

fn data_eq(a: &str, b: &str) -> Formula {
    Formula::Pred(Pred::cmp(Expr::data(a), CmpOp::Eq, Expr::data(b)))
}

// ---------------------------------------------------------------------------
// Chapter 5: queues
// ---------------------------------------------------------------------------

/// The reliable (normal) queue: the single FIFO axiom of Chapter 5,
/// `[ ⇐ afterDq(b) ] ( *afterDq(a) ≡ *(atEnq(a) ⇐ atEnq(b)) )`.
pub fn reliable_queue_spec() -> Spec {
    let after_dq = |x: &str| evt_args("afterDq", vec![var(x)]);
    let at_enq = |x: &str| evt_args("atEnq", vec![var(x)]);
    let axiom = occurs(after_dq("a"))
        .iff(occurs(bwd(at_enq("a"), at_enq("b"))))
        .within(bwd_to(after_dq("b")));
    Spec::new("reliable-queue").axiom("Queue", axiom)
}

/// The stack obtained by exchanging the `atEnq` terms in the queue axiom.
pub fn stack_spec() -> Spec {
    let after_dq = |x: &str| evt_args("afterDq", vec![var(x)]);
    let at_enq = |x: &str| evt_args("atEnq", vec![var(x)]);
    let axiom = occurs(after_dq("a"))
        .iff(occurs(bwd(at_enq("b"), at_enq("a"))))
        .within(bwd_to(after_dq("b")));
    Spec::new("stack").axiom("Stack", axiom)
}

/// The unreliable queue of Figure 5-1 (clauses I1–I3 and A1–A2).
pub fn unreliable_queue_spec() -> Spec {
    let after_dq = |x: &str| evt_args("afterDq", vec![var(x)]);
    let at_enq = |x: &str| evt_args("atEnq", vec![var(x)]);

    // I1: dequeues respect the order of the corresponding enqueues.
    let i1 = Formula::True
        .within(bwd(must(fwd(at_enq("a"), at_enq("b"))), fwd(after_dq("a"), after_dq("b"))));
    // I2: a value must be enqueued before it can be dequeued.
    let i2 = occurs(at_enq("a")).within(fwd_to(after_dq("a")));
    // I3: repeated enqueues of the same value are consecutive — between two
    // enqueues of c no other value is enqueued.
    let i3 = forall("d", data_ne("d", "c").implies(occurs(at_enq("d")).not()))
        .within(fwd(at_enq("c"), at_enq("c")));
    // A1: if enqueues and dequeue attempts keep occurring, dequeues return.
    let a1 = occurs(evt("atEnq")).and(occurs(evt("atDq"))).implies(occurs(evt("afterDq"))).always();
    // A2: the Enq operation terminates.
    let a2 = occurs(evt("afterEnq")).within(fwd_from(evt("atEnq")));

    Spec::new("unreliable-queue")
        .axiom("I1", i1)
        .axiom("I2", i2)
        .axiom("I3", i3)
        .axiom("A1", a1)
        .axiom("A2", a2)
}

// ---------------------------------------------------------------------------
// Chapter 6: self-timed systems
// ---------------------------------------------------------------------------

/// The request/acknowledge protocol of Figure 6-2 for the signal pair `(r, a)`.
///
/// The figure's axioms are asserted from every point at which a request has
/// been reset; the rendering wraps them in `□` so they constrain every cycle.
pub fn request_ack_spec(r: &str, a: &str) -> Spec {
    let req = || evt(r);
    let ack = || evt(a);
    let req_down = || event(prop(r).not());
    let ack_down = || event(prop(a).not());

    let init = prop(r).not().and(prop(a).not());
    // A1: a request, initiatable only while the acknowledgment is down, stays
    // up at least until the acknowledgment is raised (which must happen).
    let a1 = prop(a).not().and(always(prop(r))).within(fwd(req(), must(ack()))).always();
    // A2: the acknowledgment, once raised, remains up as long as the request does.
    let a2 = prop(r).and(always(prop(a))).within(fwd(ack(), begin(must(req_down())))).always();
    // A3: after the request is lowered the acknowledgment is eventually lowered.
    let a3 = occurs(ack_down()).within(fwd_from(begin(req_down()))).always();

    Spec::new(format!("request-ack({r}, {a})"))
        .init("Init", init)
        .axiom("A1", a1)
        .axiom("A2", a2)
        .axiom("A3", a3)
}

/// The arbiter of Figure 6-4 (two users).
pub fn arbiter_spec() -> Spec {
    let mut spec = Spec::new("arbiter")
        .init("Init", prop("UR1").not().and(prop("UR2").not()))
        // A2: the two transfer modules are never requested simultaneously.
        .axiom("A2", prop("TR1").and(prop("TR2")).not().always());
    for i in 1..=2 {
        let ur = format!("UR{i}");
        let ua = format!("UA{i}");
        let tr = format!("TR{i}");
        let ta = format!("TA{i}");
        // The completion event: both the transfer and the resource acknowledge.
        let completion = || event(prop(ta.clone()).and(prop("RMA")));
        // Innermost interval: once RMR is raised it stays up.
        let inner = always(prop("RMR")).within(fwd_from(evt("RMR")));
        // Middle interval: from the transfer request, TR stays up, RMR starts
        // low and is raised within the interval.
        let middle = always(prop(tr.clone()))
            .and(prop("RMR").not())
            .and(occurs(evt("RMR")))
            .and(inner)
            .within(fwd_from(evt(&tr)));
        // Outer interval: from the user request until both acknowledgments,
        // the user acknowledgment is withheld and the transfer is requested.
        let outer = always(prop(ua).not())
            .and(occurs(evt(&tr)))
            .and(middle)
            .within(fwd(evt(&ur), completion()))
            .always();
        spec = spec.axiom(format!("A1({i})"), outer);
    }
    spec
}

// ---------------------------------------------------------------------------
// Chapter 7: the Alternating-Bit protocol
// ---------------------------------------------------------------------------

/// The Sender specification (Figure 7-3 rendering).
///
/// Clause map: `Init` — no transmission before the first dequeue; `A1(kind)` —
/// the three safety clauses of axiom A1 (alternating sequence numbers, an
/// uncorrupted acknowledgment before the next dequeue, only the current packet
/// transmitted until then); `A3` — no transmission during a dequeue.  The
/// liveness clauses of axiom A2 concern infinite behaviours and are checked in
/// their finite-trace form (every completed run has acknowledged every packet),
/// which is implied by the A1 clauses over the recorded computations.
pub fn ab_sender_spec() -> Spec {
    let dq_with =
        |m: &str, v: &str| event(prop_args("afterDq", vec![var(m)]).and(state_eq_data("sexp", v)));
    // Only ⟨m, v⟩ packets may be transmitted until the next message is dequeued.
    let only_current = forall(
        "p",
        forall(
            "w",
            prop_args("atTs", vec![var("p"), var("w")])
                .implies(data_eq("p", "m").and(data_eq("w", "v"))),
        ),
    )
    .always()
    .within(fwd(dq_with("m", "v"), evt("atDq")));
    // At least one uncorrupted acknowledgment with the expected sequence number
    // arrives before the next message is dequeued.
    let ack_before_next =
        occurs(evt_args("afterRs", vec![var("v")])).within(fwd(dq_with("m", "v"), evt("atDq")));
    // Successive dequeues use alternating sequence numbers.
    let alternation = |v: i64| {
        let this_bit = event(prop("afterDq").and(state_eq_value("sexp", v)));
        let other_bit = prop("afterDq").and(state_eq_value("sexp", 1 - v));
        occurs(event(other_bit)).within(fwd(this_bit.clone(), this_bit)).always()
    };

    Spec::new("ab-sender")
        .init("Init", occurs(evt("atTs")).not().within(fwd_to(evt("atDq"))))
        .axiom("A1-only-current", only_current)
        .axiom("A1-ack-before-next", ack_before_next)
        .axiom("A1-alternate-0", alternation(0))
        .axiom("A1-alternate-1", alternation(1))
        .axiom("A3-no-send-during-dq", prop("inDq").implies(prop("atTs").not()).always())
}

/// The Receiver specification (Figure 7-4 rendering).
///
/// Clause map: `A1` — until the next packet is received, acknowledgments are
/// sent only for the last packet received; `A2` — once a packet has been
/// received an acknowledgment is eventually transmitted; `A3-delivered-from-
/// received` — only messages from received packets are delivered; `A3-deliver-
/// before-other-ack(v)` — the message of a received packet is delivered before
/// a packet with a different sequence number is acknowledged; `A3-alternate(v)`
/// — successive deliveries come from packets with alternating sequence numbers.
pub fn ab_receiver_spec() -> Spec {
    // A1: between receiving ⟨m, v⟩ and the next packet receipt, only ⟨m, v⟩ acks.
    let only_last = forall(
        "q",
        forall(
            "w",
            prop_args("atTr", vec![var("q"), var("w")])
                .implies(data_eq("q", "m").and(data_eq("w", "v"))),
        ),
    )
    .always()
    .within(fwd(evt_args("afterRr", vec![var("m"), var("v")]), evt("atRr")));
    // A2: after the first receipt an acknowledgment is eventually transmitted.
    let ack_eventually = occurs(evt("atTr")).within(fwd_from(evt("atRr")));
    // A3: delivered messages come from received packets.
    let delivered_from_received = Formula::Exists(
        "w".to_string(),
        Box::new(occurs(evt_args("afterRr", vec![var("m"), var("w")]))),
    )
    .within(fwd_to(evt_args("atEnq", vec![var("m")])));
    // A3: a received packet's message is delivered before a packet with a
    // different sequence number is acknowledged (one clause per bit value).
    let deliver_before_other_ack = |v: i64| {
        occurs(evt_args("atEnq", vec![var("p")])).within(fwd(
            evt_args("afterRr", vec![var("p"), val(v)]),
            evt_args("atTr", vec![var("q"), val(1 - v)]),
        ))
    };
    // A3: successive deliveries alternate the expected sequence number.
    let alternation = |v: i64| {
        let this_bit = event(prop("atEnq").and(state_eq_value("rexp", v)));
        let other_bit = prop("atEnq").and(state_eq_value("rexp", 1 - v));
        occurs(event(other_bit)).within(fwd(this_bit.clone(), this_bit)).always()
    };

    Spec::new("ab-receiver")
        .axiom("A1-only-last", only_last)
        .axiom("A2-ack-eventually", ack_eventually)
        .axiom("A3-delivered-from-received", delivered_from_received)
        .axiom("A3-deliver-before-other-ack-0", deliver_before_other_ack(0))
        .axiom("A3-deliver-before-other-ack-1", deliver_before_other_ack(1))
        .axiom("A3-alternate-0", alternation(0))
        .axiom("A3-alternate-1", alternation(1))
}

// ---------------------------------------------------------------------------
// Chapter 8: distributed mutual exclusion
// ---------------------------------------------------------------------------

/// The mutual-exclusion specification of Figure 8-1.
///
/// The figure's `A1` constrains the *next* critical-section entry of each
/// process; `A1-every-entry` is its `□`-strengthened version, constraining
/// every entry of the recorded computation.  Only the strengthened clause is
/// kept: it syntactically implies the figure's formula, and the analysis
/// pass (`ilogic_core::analysis::lint_spec`) flags the weaker clause as
/// subsumed (`L004`) when both are present.
pub fn mutual_exclusion_spec() -> Spec {
    let x = |i: &str| prop_args("x", vec![var(i)]);
    let cs = |i: &str| prop_args("cs", vec![var(i)]);
    let a1_body = eventually(x("j").not()).within(bwd(event(x("i")), event(cs("i"))));
    let a1_every = data_ne("i", "j").implies(a1_body.always());
    let a2 = cs("i").implies(x("i")).always();
    Spec::new("distributed-mutual-exclusion")
        .init("Init", x("m").not())
        .axiom("A1-every-entry", a1_every)
        .axiom("A2", a2)
}

/// The mutual-exclusion property derived in Figure 8-2:
/// `i ≠ j ⊃ □¬(cs(i) ∧ cs(j))`.
pub fn mutual_exclusion_theorem() -> Formula {
    let cs = |i: &str| prop_args("cs", vec![var(i)]);
    data_ne("i", "j").implies(cs("i").and(cs("j")).not().always())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mutex::{self, MutexWorkload};
    use crate::queue::{self, QueueKind, QueueWorkload};
    use crate::selftimed::{self, ChannelWorkload};
    use ilogic_core::session::{CheckRequest, Session};
    use ilogic_core::spec::close_free_variables;

    #[test]
    fn reliable_queue_conforms_and_faulty_queue_does_not() {
        let session = Session::new();
        let good = queue::simulate(
            QueueKind::Reliable,
            QueueWorkload { items: 4, retries: 1, seed: 2, phased: false },
        );
        assert!(session.check_spec(&reliable_queue_spec(), &good).passed());

        let mut rejected = false;
        for seed in 0..20 {
            let bad = queue::simulate(
                QueueKind::FaultyReordering,
                QueueWorkload { items: 5, retries: 1, seed, phased: false },
            );
            if !session.check_spec(&reliable_queue_spec(), &bad).passed() {
                rejected = true;
                break;
            }
        }
        assert!(rejected, "the FIFO axiom should reject a reordering queue");
    }

    #[test]
    fn stack_conforms_to_stack_spec_in_phased_workloads() {
        let trace = queue::simulate(
            QueueKind::Stack,
            QueueWorkload { items: 4, retries: 1, seed: 5, phased: true },
        );
        let session = Session::new();
        assert!(session.check_spec(&stack_spec(), &trace).passed());
        // And a FIFO queue violates the stack axiom on the same workload.
        let fifo = queue::simulate(
            QueueKind::Reliable,
            QueueWorkload { items: 4, retries: 1, seed: 5, phased: true },
        );
        assert!(!session.check_spec(&stack_spec(), &fifo).passed());
    }

    #[test]
    fn request_ack_protocol_conforms_and_hasty_requester_fails() {
        let session = Session::new();
        let good = selftimed::simulate_request_ack(ChannelWorkload::default());
        let report = session.check_spec(&request_ack_spec("R", "A"), &good);
        assert!(report.passed(), "{report}");

        let bad = selftimed::simulate_hasty_requester(ChannelWorkload::default());
        assert!(!session.check_spec(&request_ack_spec("R", "A"), &bad).passed());
    }

    #[test]
    fn mutual_exclusion_spec_and_theorem_hold_for_the_algorithm() {
        let session = Session::new();
        let trace =
            mutex::simulate(MutexWorkload { processes: 3, entries: 1, cs_duration: 1, seed: 3 });
        let report = session.check_spec(&mutual_exclusion_spec(), &trace);
        assert!(report.passed(), "{report}");
        let theorem = close_free_variables(&mutual_exclusion_theorem());
        assert!(session
            .check(CheckRequest::new(theorem.clone()).on_trace(&trace))
            .verdict
            .passed());

        let broken = mutex::simulate_broken(2);
        assert!(!session.check(CheckRequest::new(theorem).on_trace(&broken)).verdict.passed());
        assert!(!session.check_spec(&mutual_exclusion_spec(), &broken).passed());
    }
}
