//! Small-scope exhaustive exploration of the case-study algorithms.
//!
//! The report argues (Chapter 9) that "no specification method for distributed
//! and concurrent systems can be successful without mechanical verification
//! support", because hand analysis of process interleavings is error-prone.
//! The randomized simulators of this crate exercise *some* interleavings; this
//! module complements them with a systematic explorer that enumerates *every*
//! reachable interleaving of a small configuration, checks a safety predicate
//! in every reachable state, and projects explored runs to traces so that the
//! interval-logic specifications can be checked over them as well.
//!
//! The explorer is generic over a [`Model`]; the module provides
//! [`MutexModel`], a transition-system rendering of the Chapter 8 distributed
//! mutual-exclusion algorithm (with a `skip_inspection` switch reproducing the
//! broken variant), so that the mutual-exclusion property can be verified
//! exhaustively rather than only on sampled schedules.
//!
//! # Parallel exploration
//!
//! [`explore_with`] expands the breadth-first frontier across the
//! [`ilogic_core::pool`] worker pool: successor generation — the expensive,
//! model-specific part — runs on every worker, while the visited-set merge
//! replays the successors in exactly the sequential order, so the resulting
//! [`ExplorationReport`] (states, transitions, truncation, *and* the
//! counterexample run) is identical whatever the worker count.  [`explore`]
//! itself honours the `ILOGIC_TEST_PARALLEL` environment override, so the
//! case-study suites can be swept onto the pool wholesale.

use std::collections::{BTreeMap, BTreeSet};

use ilogic_core::pool::{Parallelism, WorkerPool};
use ilogic_core::prelude::*;
use ilogic_core::session::RunSource;

/// A finite-state transition system explored by [`explore`].
pub trait Model {
    /// A global state of the system.
    type State: Clone + Ord;

    /// The initial state.
    fn initial(&self) -> Self::State;

    /// The enabled transitions of a state: a human-readable action label plus
    /// the successor state.
    fn successors(&self, state: &Self::State) -> Vec<(String, Self::State)>;

    /// Projects a global state onto the propositions recorded in traces.
    fn observe(&self, state: &Self::State) -> State;
}

impl<M: Model + ?Sized> Model for &M {
    type State = M::State;

    fn initial(&self) -> Self::State {
        (**self).initial()
    }

    fn successors(&self, state: &Self::State) -> Vec<(String, Self::State)> {
        (**self).successors(state)
    }

    fn observe(&self, state: &Self::State) -> State {
        (**self).observe(state)
    }
}

/// Resource limits for an exploration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExploreLimits {
    /// Maximum number of distinct states to visit.
    pub max_states: usize,
    /// Maximum length of any explored run (in actions).
    pub max_depth: usize,
}

impl Default for ExploreLimits {
    fn default() -> ExploreLimits {
        ExploreLimits { max_states: 200_000, max_depth: 128 }
    }
}

/// A safety violation found by the explorer.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The sequence of action labels leading to the violating state.
    pub actions: Vec<String>,
    /// The violating run projected to a trace (initial state included).
    pub trace: Trace,
}

/// The result of an exhaustive exploration.
#[derive(Clone, Debug)]
pub struct ExplorationReport {
    /// Number of distinct states visited.
    pub states: usize,
    /// Number of transitions taken.
    pub transitions: usize,
    /// Whether the exploration was truncated by [`ExploreLimits`].
    pub truncated: bool,
    /// The first safety violation found, if any.
    pub violation: Option<Violation>,
}

impl ExplorationReport {
    /// `true` if no violation was found (and the exploration was complete).
    pub fn verified(&self) -> bool {
        self.violation.is_none() && !self.truncated
    }
}

/// Explores every state reachable from the initial state (breadth first),
/// checking `safe` in each and reconstructing a counterexample run for the
/// first violation found.
///
/// Honours the `ILOGIC_TEST_PARALLEL` environment override; use
/// [`explore_with`] to choose the parallelism explicitly.
pub fn explore<M>(
    model: &M,
    limits: ExploreLimits,
    safe: impl Fn(&M::State) -> bool + Sync,
) -> ExplorationReport
where
    M: Model + Sync,
    M::State: Send + Sync,
{
    explore_with(model, limits, Parallelism::from_env().unwrap_or(Parallelism::Off), safe)
}

/// Frontier states expanded per worker per fan-out round: bounds the
/// successor computations wasted when a violation stops the exploration
/// mid-level.
const EXPLORE_CHUNK_PER_WORKER: usize = 64;

/// [`explore`] with an explicit [`Parallelism`]: the breadth-first frontier is
/// striped across the worker pool for successor generation (in chunks of
/// `EXPLORE_CHUNK_PER_WORKER` states per worker), then merged in frontier
/// order, which keeps every field of the report — including the
/// counterexample interleaving — identical to the single-threaded exploration.
pub fn explore_with<M>(
    model: &M,
    limits: ExploreLimits,
    parallelism: Parallelism,
    safe: impl Fn(&M::State) -> bool + Sync,
) -> ExplorationReport
where
    M: Model + Sync,
    M::State: Send + Sync,
{
    let pool = WorkerPool::new(parallelism);
    let initial = model.initial();
    let mut parent: BTreeMap<M::State, (M::State, String)> = BTreeMap::new();
    let mut visited: BTreeSet<M::State> = BTreeSet::new();
    visited.insert(initial.clone());

    let mut transitions = 0usize;
    let mut truncated = false;
    let mut violation: Option<Violation> = None;

    if !safe(&initial) {
        violation = Some(reconstruct(model, &parent, &initial));
    }

    // Level-synchronous BFS: `frontier` holds every state at the current
    // depth, in the order the sequential exploration would pop them.
    let mut frontier = vec![initial];
    let mut level_depth = 0usize;
    'levels: while !frontier.is_empty() && violation.is_none() {
        if level_depth >= limits.max_depth {
            truncated = true;
            break;
        }
        // Expand the level chunk by chunk: within a chunk, worker w computes
        // the successors of chunk states w, w + n, ... — the model-specific
        // cost — and the slices are stitched back together in frontier order.
        // Chunking bounds the work wasted when a violation (which stops the
        // whole exploration) lands early in a wide level; with one worker the
        // chunk is expanded lazily inside the merge loop, so the default
        // sequential path keeps the pre-pool expand-one-check-one behaviour.
        let workers = pool.workers();
        let chunk_len = EXPLORE_CHUNK_PER_WORKER * workers;
        let mut next_frontier = Vec::new();
        for chunk in frontier.chunks(chunk_len) {
            let mut expanded: Vec<Vec<(String, M::State)>> = if workers == 1 {
                Vec::new()
            } else {
                let slices = pool.run(|w| {
                    chunk
                        .iter()
                        .skip(w)
                        .step_by(workers)
                        .map(|state| model.successors(state))
                        .collect::<Vec<_>>()
                });
                let mut slices: Vec<_> = slices.into_iter().map(Vec::into_iter).collect();
                (0..chunk.len())
                    .map(|i| slices[i % workers].next().expect("worker slices cover the chunk"))
                    .collect()
            };
            // Merge sequentially, replaying exactly the single-threaded loop:
            // transition counting, the state cap, safety checks and the
            // violation break happen in the same order with the same early
            // exits.
            for (i, state) in chunk.iter().enumerate() {
                let succ = if workers == 1 {
                    model.successors(state)
                } else {
                    std::mem::take(&mut expanded[i])
                };
                for (label, next) in succ {
                    transitions += 1;
                    if visited.contains(&next) {
                        continue;
                    }
                    if visited.len() >= limits.max_states {
                        truncated = true;
                        break;
                    }
                    visited.insert(next.clone());
                    parent.insert(next.clone(), (state.clone(), label));
                    if !safe(&next) {
                        violation = Some(reconstruct(model, &parent, &next));
                        break 'levels;
                    }
                    next_frontier.push(next);
                }
            }
        }
        frontier = next_frontier;
        level_depth += 1;
    }

    ExplorationReport { states: visited.len(), transitions, truncated, violation }
}

fn reconstruct<M: Model>(
    model: &M,
    parent: &BTreeMap<M::State, (M::State, String)>,
    target: &M::State,
) -> Violation {
    let mut actions = Vec::new();
    let mut states = vec![target.clone()];
    let mut cursor = target.clone();
    while let Some((prev, label)) = parent.get(&cursor) {
        actions.push(label.clone());
        states.push(prev.clone());
        cursor = prev.clone();
    }
    actions.reverse();
    states.reverse();
    let trace = Trace::finite(states.iter().map(|s| model.observe(s)).collect());
    Violation { actions, trace }
}

/// Packages the complete runs of `model` as a *lazy* [`Backend::Explore`]
/// value: runs are streamed out of a depth-first [`RunIter`] while the check
/// executes (and batched across the worker pool under parallelism), so the
/// checker's memory footprint is one batch of runs, not the whole run set.
///
/// ```
/// use ilogic_core::prelude::*;
/// use ilogic_core::dsl::*;
/// use ilogic_systems::explore::{explore_backend, ExploreLimits, MutexModel};
///
/// let model = MutexModel::correct(2, 1);
/// let mut session = Session::new();
/// let request = CheckRequest::new(always(prop("ok").or(prop("ok").not())))
///     .with_backend(explore_backend(&model, ExploreLimits::default(), 16));
/// assert!(session.check(request).verdict.passed());
/// ```
pub fn explore_backend<M>(model: &M, limits: ExploreLimits, max_runs: usize) -> Backend
where
    M: Model + Clone + Send + Sync + 'static,
    M::State: Send,
{
    let model = model.clone();
    Backend::Explore {
        runs: RunSource::lazy(move || RunIter::new(model.clone(), limits, max_runs)),
    }
}

/// One randomly scheduled run of the model, projected onto a trace: at every
/// state a uniformly chosen enabled transition is taken, until the system
/// quiesces or `max_steps` transitions have fired.  Deterministic in `seed` —
/// this is how the simulators and the differential-fuzz corpus sample
/// schedules the exhaustive explorer would only reach late.
pub fn random_run<M: Model>(model: &M, max_steps: usize, seed: u64) -> Trace {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let mut rng = StdRng::seed_from_u64(seed);
    let mut state = model.initial();
    let mut states = vec![model.observe(&state)];
    for _ in 0..max_steps {
        let mut successors = model.successors(&state);
        if successors.is_empty() {
            break;
        }
        let pick = rng.gen_range(0..successors.len());
        state = successors.swap_remove(pick).1;
        states.push(model.observe(&state));
    }
    Trace::finite(states)
}

/// Enumerates complete runs of the model (depth-first, up to the limits) and
/// projects each onto a trace.  A run is complete when it reaches a state with
/// no enabled transition or the depth limit.
///
/// Collects the whole run set eagerly; prefer [`RunIter`] (or the lazy
/// [`explore_backend`]) when the runs are only consumed once.
pub fn collect_runs<M: Model>(model: &M, limits: ExploreLimits, max_runs: usize) -> Vec<Trace> {
    RunIter::new(model, limits, max_runs).collect()
}

/// A streaming depth-first enumerator of the complete runs of a model.
///
/// Yields each complete run (a path from the initial state to a state with no
/// fresh successor, or to the depth limit) projected onto a [`Trace`], in
/// depth-first order — the same order and run set `collect_runs` materializes.
/// Transitions that immediately revisit a state already on the path are
/// filtered out: they only pump cycles and never add new observable
/// behaviour.
///
/// The iterator owns its model (use a `&M` model — [`Model`] is implemented
/// for references — to borrow instead), holds only the current path plus one
/// pending-successor frame per depth, and is `Send` whenever the model and its
/// states are, which is what lets [`explore_backend`] hand it to the parallel
/// explore engine as a lazy run source.
#[derive(Debug)]
pub struct RunIter<M: Model> {
    model: M,
    limits: ExploreLimits,
    max_runs: usize,
    emitted: usize,
    path: Vec<M::State>,
    on_path: BTreeSet<M::State>,
    /// Remaining untried successors at each depth; `pending.len()` is always
    /// `path.len() - 1` outside of `next` (frame `d` holds the siblings of
    /// `path[d + 1]`).
    pending: Vec<std::vec::IntoIter<M::State>>,
    /// Whether the tip of `path` still needs to be expanded.
    descend: bool,
    done: bool,
}

impl<M: Model> RunIter<M> {
    /// An iterator over the complete runs of `model`.
    pub fn new(model: M, limits: ExploreLimits, max_runs: usize) -> RunIter<M> {
        let initial = model.initial();
        RunIter {
            model,
            limits,
            max_runs,
            emitted: 0,
            path: vec![initial],
            on_path: BTreeSet::new(),
            pending: Vec::new(),
            descend: true,
            done: false,
        }
    }

    fn project(&self) -> Trace {
        Trace::finite(self.path.iter().map(|s| self.model.observe(s)).collect())
    }

    /// Pops the current tip and advances to its next pending sibling.
    /// Returns `false` when the whole tree is exhausted.
    fn backtrack(&mut self) -> bool {
        loop {
            let Some(frame) = self.pending.last_mut() else {
                return false;
            };
            let tip = self.path.pop().expect("path holds a state per frame");
            self.on_path.remove(&tip);
            if let Some(sibling) = frame.next() {
                self.on_path.insert(sibling.clone());
                self.path.push(sibling);
                self.descend = true;
                return true;
            }
            self.pending.pop();
        }
    }
}

impl<M: Model> Iterator for RunIter<M> {
    type Item = Trace;

    fn next(&mut self) -> Option<Trace> {
        if self.done || self.emitted >= self.max_runs {
            return None;
        }
        loop {
            if self.descend {
                self.descend = false;
                let tip = self.path.last().expect("path is never empty");
                let fresh: Vec<M::State> = self
                    .model
                    .successors(tip)
                    .into_iter()
                    .map(|(_, next)| next)
                    .filter(|next| !self.on_path.contains(next))
                    .collect();
                if fresh.is_empty() || self.path.len() > self.limits.max_depth {
                    let run = self.project();
                    self.emitted += 1;
                    if !self.backtrack() {
                        self.done = true;
                    }
                    return Some(run);
                }
                let mut frame = fresh.into_iter();
                let first = frame.next().expect("fresh is non-empty");
                self.pending.push(frame);
                self.on_path.insert(first.clone());
                self.path.push(first);
                self.descend = true;
            } else if !self.backtrack() {
                self.done = true;
                return None;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The Chapter 8 distributed mutual-exclusion algorithm as a model.
// ---------------------------------------------------------------------------

/// Per-process phase of the mutual-exclusion algorithm.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum MutexPhase {
    /// Not competing; the number of critical-section entries still to perform.
    Idle(usize),
    /// Flag set; the other processes still to be observed false, plus the
    /// remaining entry budget.
    Checking(Vec<usize>, usize),
    /// In the critical section; remaining entry budget after this entry.
    Critical(usize),
    /// Finished.
    Done,
}

/// A global state: one phase per process.
pub type MutexState = Vec<MutexPhase>;

/// The distributed mutual-exclusion algorithm of Chapter 8 as an explorable
/// transition system.
#[derive(Clone, Copy, Debug)]
pub struct MutexModel {
    /// Number of processes.
    pub processes: usize,
    /// Critical-section entries each process performs.
    pub entries: usize,
    /// Reproduces the broken variant: processes enter without inspecting the
    /// other flags.
    pub skip_inspection: bool,
}

impl MutexModel {
    /// The correct algorithm.
    pub fn correct(processes: usize, entries: usize) -> MutexModel {
        MutexModel { processes, entries, skip_inspection: false }
    }

    /// The broken variant that skips flag inspection.
    pub fn broken(processes: usize, entries: usize) -> MutexModel {
        MutexModel { processes, entries, skip_inspection: true }
    }

    fn flag_up(phase: &MutexPhase) -> bool {
        matches!(phase, MutexPhase::Checking(_, _) | MutexPhase::Critical(_))
    }

    fn in_cs(phase: &MutexPhase) -> bool {
        matches!(phase, MutexPhase::Critical(_))
    }

    /// The safety property of Figure 8-1's derived theorem: at most one
    /// process in the critical section.
    pub fn mutual_exclusion(state: &MutexState) -> bool {
        state.iter().filter(|p| MutexModel::in_cs(p)).count() <= 1
    }
}

impl Model for MutexModel {
    type State = MutexState;

    fn initial(&self) -> MutexState {
        vec![MutexPhase::Idle(self.entries); self.processes]
    }

    fn successors(&self, state: &MutexState) -> Vec<(String, MutexState)> {
        let mut result = Vec::new();
        for i in 0..self.processes {
            match &state[i] {
                MutexPhase::Idle(0) => {
                    let mut next = state.clone();
                    next[i] = MutexPhase::Done;
                    result.push((format!("finish({i})"), next));
                }
                MutexPhase::Idle(budget) => {
                    // Signal the intention to enter: set x(i).
                    let mut next = state.clone();
                    let to_check = if self.skip_inspection {
                        Vec::new()
                    } else {
                        (0..self.processes).filter(|&j| j != i).collect()
                    };
                    next[i] = MutexPhase::Checking(to_check, *budget);
                    result.push((format!("set_flag({i})"), next));
                }
                MutexPhase::Checking(to_check, budget) => {
                    if let Some(&j) = to_check.first() {
                        // Observe x(j): abandon if it is up, tick it off otherwise.
                        let mut next = state.clone();
                        if MutexModel::flag_up(&state[j]) {
                            next[i] = MutexPhase::Idle(*budget);
                            result.push((format!("abandon({i},{j})"), next));
                        } else {
                            let rest = to_check[1..].to_vec();
                            next[i] = MutexPhase::Checking(rest, *budget);
                            result.push((format!("observe({i},{j})"), next));
                        }
                    } else {
                        // Every other flag has been observed false: enter.
                        let mut next = state.clone();
                        next[i] = MutexPhase::Critical(*budget - 1);
                        result.push((format!("enter({i})"), next));
                    }
                }
                MutexPhase::Critical(budget) => {
                    let mut next = state.clone();
                    next[i] = MutexPhase::Idle(*budget);
                    result.push((format!("exit({i})"), next));
                }
                MutexPhase::Done => {}
            }
        }
        result
    }

    fn observe(&self, state: &MutexState) -> State {
        let mut observed = State::new();
        for (i, phase) in state.iter().enumerate() {
            if MutexModel::flag_up(phase) {
                observed.insert(Prop::with_args("x", [i as i64]));
            }
            if MutexModel::in_cs(phase) {
                observed.insert(Prop::with_args("cs", [i as i64]));
            }
        }
        observed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mutex::mutual_exclusion_holds;
    use crate::specs::mutual_exclusion_spec;

    #[test]
    fn correct_algorithm_is_verified_exhaustively_for_two_processes() {
        let model = MutexModel::correct(2, 2);
        let report = explore(&model, ExploreLimits::default(), MutexModel::mutual_exclusion);
        assert!(report.verified(), "violation: {:?}", report.violation.map(|v| v.actions));
        assert!(report.states > 10);
    }

    #[test]
    fn correct_algorithm_is_verified_exhaustively_for_three_processes() {
        let model = MutexModel::correct(3, 1);
        let report = explore(&model, ExploreLimits::default(), MutexModel::mutual_exclusion);
        assert!(report.verified(), "violation: {:?}", report.violation.map(|v| v.actions));
        assert!(report.states > 50);
    }

    #[test]
    fn broken_algorithm_yields_a_counterexample_run() {
        let model = MutexModel::broken(2, 1);
        let report = explore(&model, ExploreLimits::default(), MutexModel::mutual_exclusion);
        let violation = report.violation.expect("the broken variant must be caught");
        assert!(!mutual_exclusion_holds(&violation.trace, 2));
        // The counterexample really interleaves two entries.
        assert!(violation.actions.iter().filter(|a| a.starts_with("enter")).count() == 2);
    }

    #[test]
    fn explored_runs_satisfy_the_figure_8_1_specification() {
        let model = MutexModel::correct(2, 1);
        let runs = collect_runs(&model, ExploreLimits::default(), 64);
        assert!(!runs.is_empty());
        let spec = mutual_exclusion_spec();
        let session = Session::new();
        for trace in &runs {
            let report = session.check_spec(&spec, trace);
            assert!(report.passed(), "spec violated on run {trace}: {:?}", report.failures());
        }
    }

    #[test]
    fn explore_backend_routes_runs_through_the_session_api() {
        let model = MutexModel::correct(2, 1);
        let backend = explore_backend(&model, ExploreLimits::default(), 64);
        let theorem =
            ilogic_core::spec::close_free_variables(&crate::specs::mutual_exclusion_theorem());
        let session = Session::new();
        let report = session.check(CheckRequest::new(theorem.clone()).with_backend(backend));
        assert_eq!(report.backend, "explore");
        assert!(report.verdict.passed(), "{}", report.verdict);
        assert!(report.stats.traces_checked > 0);

        // The broken variant's runs are rejected with a concrete counterexample run.
        let broken = explore_backend(&MutexModel::broken(2, 1), ExploreLimits::default(), 64);
        let report = session.check(CheckRequest::new(theorem).with_backend(broken));
        assert!(report.verdict.counterexample().is_some());
    }

    #[test]
    fn parallel_exploration_reports_are_identical_to_sequential() {
        for model in
            [MutexModel::correct(2, 2), MutexModel::correct(3, 1), MutexModel::broken(2, 1)]
        {
            let sequential = explore_with(
                &model,
                ExploreLimits::default(),
                Parallelism::Off,
                MutexModel::mutual_exclusion,
            );
            for workers in 2..=4 {
                let parallel = explore_with(
                    &model,
                    ExploreLimits::default(),
                    Parallelism::Fixed(workers),
                    MutexModel::mutual_exclusion,
                );
                assert_eq!(parallel.states, sequential.states, "workers={workers}");
                assert_eq!(parallel.transitions, sequential.transitions, "workers={workers}");
                assert_eq!(parallel.truncated, sequential.truncated, "workers={workers}");
                match (&parallel.violation, &sequential.violation) {
                    (None, None) => {}
                    (Some(p), Some(s)) => {
                        assert_eq!(p.actions, s.actions, "workers={workers}");
                        assert_eq!(p.trace, s.trace, "workers={workers}");
                    }
                    other => panic!("violation mismatch at workers={workers}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn parallel_exploration_replicates_truncation() {
        let model = MutexModel::correct(3, 2);
        let limits = ExploreLimits { max_states: 25, max_depth: 8 };
        let sequential =
            explore_with(&model, limits, Parallelism::Off, MutexModel::mutual_exclusion);
        let parallel =
            explore_with(&model, limits, Parallelism::Fixed(3), MutexModel::mutual_exclusion);
        assert!(parallel.truncated);
        assert_eq!(parallel.states, sequential.states);
        assert_eq!(parallel.transitions, sequential.transitions);
    }

    #[test]
    fn run_iter_streams_the_same_runs_collect_runs_materializes() {
        let model = MutexModel::correct(2, 1);
        let collected = collect_runs(&model, ExploreLimits::default(), 64);
        let streamed: Vec<Trace> = RunIter::new(&model, ExploreLimits::default(), 64).collect();
        assert_eq!(streamed, collected);
        // The run cap truncates the stream at the same prefix.
        let capped: Vec<Trace> = RunIter::new(&model, ExploreLimits::default(), 5).collect();
        assert_eq!(capped.as_slice(), &collected[..5]);
    }

    #[test]
    fn exploration_limits_are_respected() {
        let model = MutexModel::correct(3, 2);
        let limits = ExploreLimits { max_states: 25, max_depth: 8 };
        let report = explore(&model, limits, MutexModel::mutual_exclusion);
        assert!(report.truncated);
        assert!(report.states <= 25);
        assert!(!report.verified());
    }

    #[test]
    fn collect_runs_projects_initial_and_final_states() {
        let model = MutexModel::correct(2, 1);
        let runs = collect_runs(&model, ExploreLimits::default(), 8);
        for trace in &runs {
            // Initial state: no flags, no critical sections.
            assert!(trace.states()[0].props().count() == 0);
        }
    }
}
