//! Small-scope exhaustive exploration of the case-study algorithms.
//!
//! The report argues (Chapter 9) that "no specification method for distributed
//! and concurrent systems can be successful without mechanical verification
//! support", because hand analysis of process interleavings is error-prone.
//! The randomized simulators of this crate exercise *some* interleavings; this
//! module complements them with a systematic explorer that enumerates *every*
//! reachable interleaving of a small configuration, checks a safety predicate
//! in every reachable state, and projects explored runs to traces so that the
//! interval-logic specifications can be checked over them as well.
//!
//! The explorer is generic over a [`Model`]; the module provides
//! [`MutexModel`], a transition-system rendering of the Chapter 8 distributed
//! mutual-exclusion algorithm (with a `skip_inspection` switch reproducing the
//! broken variant), so that the mutual-exclusion property can be verified
//! exhaustively rather than only on sampled schedules.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use ilogic_core::prelude::*;

/// A finite-state transition system explored by [`explore`].
pub trait Model {
    /// A global state of the system.
    type State: Clone + Ord;

    /// The initial state.
    fn initial(&self) -> Self::State;

    /// The enabled transitions of a state: a human-readable action label plus
    /// the successor state.
    fn successors(&self, state: &Self::State) -> Vec<(String, Self::State)>;

    /// Projects a global state onto the propositions recorded in traces.
    fn observe(&self, state: &Self::State) -> State;
}

/// Resource limits for an exploration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExploreLimits {
    /// Maximum number of distinct states to visit.
    pub max_states: usize,
    /// Maximum length of any explored run (in actions).
    pub max_depth: usize,
}

impl Default for ExploreLimits {
    fn default() -> ExploreLimits {
        ExploreLimits { max_states: 200_000, max_depth: 128 }
    }
}

/// A safety violation found by the explorer.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The sequence of action labels leading to the violating state.
    pub actions: Vec<String>,
    /// The violating run projected to a trace (initial state included).
    pub trace: Trace,
}

/// The result of an exhaustive exploration.
#[derive(Clone, Debug)]
pub struct ExplorationReport {
    /// Number of distinct states visited.
    pub states: usize,
    /// Number of transitions taken.
    pub transitions: usize,
    /// Whether the exploration was truncated by [`ExploreLimits`].
    pub truncated: bool,
    /// The first safety violation found, if any.
    pub violation: Option<Violation>,
}

impl ExplorationReport {
    /// `true` if no violation was found (and the exploration was complete).
    pub fn verified(&self) -> bool {
        self.violation.is_none() && !self.truncated
    }
}

/// Explores every state reachable from the initial state (breadth first),
/// checking `safe` in each and reconstructing a counterexample run for the
/// first violation found.
pub fn explore<M: Model>(
    model: &M,
    limits: ExploreLimits,
    safe: impl Fn(&M::State) -> bool,
) -> ExplorationReport {
    let initial = model.initial();
    let mut parent: BTreeMap<M::State, (M::State, String)> = BTreeMap::new();
    let mut depth: BTreeMap<M::State, usize> = BTreeMap::new();
    let mut queue = VecDeque::new();
    let mut visited: BTreeSet<M::State> = BTreeSet::new();
    visited.insert(initial.clone());
    depth.insert(initial.clone(), 0);
    queue.push_back(initial.clone());

    let mut transitions = 0usize;
    let mut truncated = false;
    let mut violation: Option<Violation> = None;

    if !safe(&initial) {
        violation = Some(reconstruct(model, &parent, &initial));
    }

    while let Some(state) = queue.pop_front() {
        if violation.is_some() {
            break;
        }
        let d = depth[&state];
        if d >= limits.max_depth {
            truncated = true;
            continue;
        }
        for (label, next) in model.successors(&state) {
            transitions += 1;
            if visited.contains(&next) {
                continue;
            }
            if visited.len() >= limits.max_states {
                truncated = true;
                break;
            }
            visited.insert(next.clone());
            parent.insert(next.clone(), (state.clone(), label));
            depth.insert(next.clone(), d + 1);
            if !safe(&next) {
                violation = Some(reconstruct(model, &parent, &next));
                break;
            }
            queue.push_back(next);
        }
    }

    ExplorationReport { states: visited.len(), transitions, truncated, violation }
}

fn reconstruct<M: Model>(
    model: &M,
    parent: &BTreeMap<M::State, (M::State, String)>,
    target: &M::State,
) -> Violation {
    let mut actions = Vec::new();
    let mut states = vec![target.clone()];
    let mut cursor = target.clone();
    while let Some((prev, label)) = parent.get(&cursor) {
        actions.push(label.clone());
        states.push(prev.clone());
        cursor = prev.clone();
    }
    actions.reverse();
    states.reverse();
    let trace = Trace::finite(states.iter().map(|s| model.observe(s)).collect());
    Violation { actions, trace }
}

/// Packages the complete runs of `model` as a [`Backend::Explore`] value, so
/// model exploration plugs into the unified `Session` checking API:
///
/// ```
/// use ilogic_core::prelude::*;
/// use ilogic_core::dsl::*;
/// use ilogic_systems::explore::{explore_backend, ExploreLimits, MutexModel};
///
/// let model = MutexModel::correct(2, 1);
/// let mut session = Session::new();
/// let request = CheckRequest::new(always(prop("ok").or(prop("ok").not())))
///     .with_backend(explore_backend(&model, ExploreLimits::default(), 16));
/// assert!(session.check(request).verdict.passed());
/// ```
pub fn explore_backend<M: Model>(model: &M, limits: ExploreLimits, max_runs: usize) -> Backend {
    Backend::Explore { runs: collect_runs(model, limits, max_runs) }
}

/// Enumerates complete runs of the model (depth-first, up to the limits) and
/// projects each onto a trace.  A run is complete when it reaches a state with
/// no enabled transition or the depth limit.
pub fn collect_runs<M: Model>(model: &M, limits: ExploreLimits, max_runs: usize) -> Vec<Trace> {
    let mut runs = Vec::new();
    let mut path = vec![model.initial()];
    dfs_runs(model, limits, max_runs, &mut path, &mut BTreeSet::new(), &mut runs);
    runs
}

fn dfs_runs<M: Model>(
    model: &M,
    limits: ExploreLimits,
    max_runs: usize,
    path: &mut Vec<M::State>,
    on_path: &mut BTreeSet<M::State>,
    runs: &mut Vec<Trace>,
) {
    if runs.len() >= max_runs {
        return;
    }
    let current = path.last().expect("path is never empty").clone();
    let successors = model.successors(&current);
    // Filter out transitions that immediately revisit a state already on the
    // path (they only pump cycles and never add new observable behaviour).
    let fresh: Vec<(String, M::State)> =
        successors.into_iter().filter(|(_, next)| !on_path.contains(next)).collect();
    if fresh.is_empty() || path.len() > limits.max_depth {
        runs.push(Trace::finite(path.iter().map(|s| model.observe(s)).collect()));
        return;
    }
    for (_, next) in fresh {
        path.push(next.clone());
        on_path.insert(next.clone());
        dfs_runs(model, limits, max_runs, path, on_path, runs);
        on_path.remove(&next);
        path.pop();
        if runs.len() >= max_runs {
            return;
        }
    }
}

// ---------------------------------------------------------------------------
// The Chapter 8 distributed mutual-exclusion algorithm as a model.
// ---------------------------------------------------------------------------

/// Per-process phase of the mutual-exclusion algorithm.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum MutexPhase {
    /// Not competing; the number of critical-section entries still to perform.
    Idle(usize),
    /// Flag set; the other processes still to be observed false, plus the
    /// remaining entry budget.
    Checking(Vec<usize>, usize),
    /// In the critical section; remaining entry budget after this entry.
    Critical(usize),
    /// Finished.
    Done,
}

/// A global state: one phase per process.
pub type MutexState = Vec<MutexPhase>;

/// The distributed mutual-exclusion algorithm of Chapter 8 as an explorable
/// transition system.
#[derive(Clone, Copy, Debug)]
pub struct MutexModel {
    /// Number of processes.
    pub processes: usize,
    /// Critical-section entries each process performs.
    pub entries: usize,
    /// Reproduces the broken variant: processes enter without inspecting the
    /// other flags.
    pub skip_inspection: bool,
}

impl MutexModel {
    /// The correct algorithm.
    pub fn correct(processes: usize, entries: usize) -> MutexModel {
        MutexModel { processes, entries, skip_inspection: false }
    }

    /// The broken variant that skips flag inspection.
    pub fn broken(processes: usize, entries: usize) -> MutexModel {
        MutexModel { processes, entries, skip_inspection: true }
    }

    fn flag_up(phase: &MutexPhase) -> bool {
        matches!(phase, MutexPhase::Checking(_, _) | MutexPhase::Critical(_))
    }

    fn in_cs(phase: &MutexPhase) -> bool {
        matches!(phase, MutexPhase::Critical(_))
    }

    /// The safety property of Figure 8-1's derived theorem: at most one
    /// process in the critical section.
    pub fn mutual_exclusion(state: &MutexState) -> bool {
        state.iter().filter(|p| MutexModel::in_cs(p)).count() <= 1
    }
}

impl Model for MutexModel {
    type State = MutexState;

    fn initial(&self) -> MutexState {
        vec![MutexPhase::Idle(self.entries); self.processes]
    }

    fn successors(&self, state: &MutexState) -> Vec<(String, MutexState)> {
        let mut result = Vec::new();
        for i in 0..self.processes {
            match &state[i] {
                MutexPhase::Idle(0) => {
                    let mut next = state.clone();
                    next[i] = MutexPhase::Done;
                    result.push((format!("finish({i})"), next));
                }
                MutexPhase::Idle(budget) => {
                    // Signal the intention to enter: set x(i).
                    let mut next = state.clone();
                    let to_check = if self.skip_inspection {
                        Vec::new()
                    } else {
                        (0..self.processes).filter(|&j| j != i).collect()
                    };
                    next[i] = MutexPhase::Checking(to_check, *budget);
                    result.push((format!("set_flag({i})"), next));
                }
                MutexPhase::Checking(to_check, budget) => {
                    if let Some(&j) = to_check.first() {
                        // Observe x(j): abandon if it is up, tick it off otherwise.
                        let mut next = state.clone();
                        if MutexModel::flag_up(&state[j]) {
                            next[i] = MutexPhase::Idle(*budget);
                            result.push((format!("abandon({i},{j})"), next));
                        } else {
                            let rest = to_check[1..].to_vec();
                            next[i] = MutexPhase::Checking(rest, *budget);
                            result.push((format!("observe({i},{j})"), next));
                        }
                    } else {
                        // Every other flag has been observed false: enter.
                        let mut next = state.clone();
                        next[i] = MutexPhase::Critical(*budget - 1);
                        result.push((format!("enter({i})"), next));
                    }
                }
                MutexPhase::Critical(budget) => {
                    let mut next = state.clone();
                    next[i] = MutexPhase::Idle(*budget);
                    result.push((format!("exit({i})"), next));
                }
                MutexPhase::Done => {}
            }
        }
        result
    }

    fn observe(&self, state: &MutexState) -> State {
        let mut observed = State::new();
        for (i, phase) in state.iter().enumerate() {
            if MutexModel::flag_up(phase) {
                observed.insert(Prop::with_args("x", [i as i64]));
            }
            if MutexModel::in_cs(phase) {
                observed.insert(Prop::with_args("cs", [i as i64]));
            }
        }
        observed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mutex::mutual_exclusion_holds;
    use crate::specs::mutual_exclusion_spec;

    #[test]
    fn correct_algorithm_is_verified_exhaustively_for_two_processes() {
        let model = MutexModel::correct(2, 2);
        let report = explore(&model, ExploreLimits::default(), MutexModel::mutual_exclusion);
        assert!(report.verified(), "violation: {:?}", report.violation.map(|v| v.actions));
        assert!(report.states > 10);
    }

    #[test]
    fn correct_algorithm_is_verified_exhaustively_for_three_processes() {
        let model = MutexModel::correct(3, 1);
        let report = explore(&model, ExploreLimits::default(), MutexModel::mutual_exclusion);
        assert!(report.verified(), "violation: {:?}", report.violation.map(|v| v.actions));
        assert!(report.states > 50);
    }

    #[test]
    fn broken_algorithm_yields_a_counterexample_run() {
        let model = MutexModel::broken(2, 1);
        let report = explore(&model, ExploreLimits::default(), MutexModel::mutual_exclusion);
        let violation = report.violation.expect("the broken variant must be caught");
        assert!(!mutual_exclusion_holds(&violation.trace, 2));
        // The counterexample really interleaves two entries.
        assert!(violation.actions.iter().filter(|a| a.starts_with("enter")).count() == 2);
    }

    #[test]
    fn explored_runs_satisfy_the_figure_8_1_specification() {
        let model = MutexModel::correct(2, 1);
        let runs = collect_runs(&model, ExploreLimits::default(), 64);
        assert!(!runs.is_empty());
        let spec = mutual_exclusion_spec();
        let mut session = Session::new();
        for trace in &runs {
            let report = session.check_spec(&spec, trace);
            assert!(report.passed(), "spec violated on run {trace}: {:?}", report.failures());
        }
    }

    #[test]
    fn explore_backend_routes_runs_through_the_session_api() {
        let model = MutexModel::correct(2, 1);
        let backend = explore_backend(&model, ExploreLimits::default(), 64);
        let theorem =
            ilogic_core::spec::close_free_variables(&crate::specs::mutual_exclusion_theorem());
        let mut session = Session::new();
        let report = session.check(CheckRequest::new(theorem.clone()).with_backend(backend));
        assert_eq!(report.backend, "explore");
        assert!(report.verdict.passed(), "{}", report.verdict);
        assert!(report.stats.traces_checked > 0);

        // The broken variant's runs are rejected with a concrete counterexample run.
        let broken = explore_backend(&MutexModel::broken(2, 1), ExploreLimits::default(), 64);
        let report = session.check(CheckRequest::new(theorem).with_backend(broken));
        assert!(report.verdict.counterexample().is_some());
    }

    #[test]
    fn exploration_limits_are_respected() {
        let model = MutexModel::correct(3, 2);
        let limits = ExploreLimits { max_states: 25, max_depth: 8 };
        let report = explore(&model, limits, MutexModel::mutual_exclusion);
        assert!(report.truncated);
        assert!(report.states <= 25);
        assert!(!report.verified());
    }

    #[test]
    fn collect_runs_projects_initial_and_final_states() {
        let model = MutexModel::correct(2, 1);
        let runs = collect_runs(&model, ExploreLimits::default(), 8);
        for trace in &runs {
            // Initial state: no flags, no critical sections.
            assert!(trace.states()[0].props().count() == 0);
        }
    }
}
