//! A master/slave sensor-bus protocol with timeouts and retries.
//!
//! One master polls `n` sensor slaves over a shared bus, strictly one
//! transaction at a time: it raises a request to the current slave and waits;
//! the slave either answers (the sensor read succeeds) or the watchdog fires
//! a timeout, in which case the master retries the same slave up to
//! `max_retries` times before declaring it dead and moving on.  The
//! interval-logic specification ([`sensor_bus_spec`]) pins down bus
//! exclusivity (one outstanding transaction), resolution (every poll ends in
//! a reading or a declared failure), and verdict stability/consistency — the
//! embedded-comm shape of the ROADMAP's protocol-zoo item.
//!
//! The broken variant ([`SensorBusModel::broken`]) lets the master grow
//! impatient: while still waiting on a slow slave it may already poll the
//! next one, overlapping two transactions on the bus — a violation the
//! exhaustive explorer catches with a concrete schedule.

use ilogic_core::dsl::*;
use ilogic_core::prelude::*;

use crate::explore::Model;

/// The sensor bus as an explorable transition system.
#[derive(Clone, Copy, Debug)]
pub struct SensorBusModel {
    /// Number of slave sensors on the bus.
    pub slaves: usize,
    /// Timeouts tolerated per slave before it is declared dead.
    pub max_retries: usize,
    /// Reproduces the broken variant: the master may poll the next slave
    /// while a transaction is still outstanding.
    pub overlap_polls: bool,
}

/// A global bus state.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct BusState {
    /// Next slave the master will poll.
    pub cursor: usize,
    /// Outstanding transaction per slave: `Some(attempt)` while a request to
    /// that slave is on the bus.
    pub outstanding: Vec<Option<usize>>,
    /// Slaves that delivered a reading.
    pub ok: Vec<bool>,
    /// Slaves declared dead after exhausting the retries.
    pub dead: Vec<bool>,
}

impl SensorBusModel {
    /// The disciplined master: one transaction at a time.
    pub fn correct(slaves: usize, max_retries: usize) -> SensorBusModel {
        SensorBusModel { slaves, max_retries, overlap_polls: false }
    }

    /// The impatient master that overlaps transactions.
    pub fn broken(slaves: usize, max_retries: usize) -> SensorBusModel {
        SensorBusModel { slaves, max_retries, overlap_polls: true }
    }

    /// Safety: at most one transaction outstanding on the bus.
    pub fn bus_exclusive(state: &BusState) -> bool {
        state.outstanding.iter().filter(|o| o.is_some()).count() <= 1
    }
}

impl Model for SensorBusModel {
    type State = BusState;

    fn initial(&self) -> BusState {
        BusState {
            cursor: 0,
            outstanding: vec![None; self.slaves],
            ok: vec![false; self.slaves],
            dead: vec![false; self.slaves],
        }
    }

    fn successors(&self, state: &BusState) -> Vec<(String, BusState)> {
        let mut result = Vec::new();
        let bus_idle = state.outstanding.iter().all(Option::is_none);
        if state.cursor < self.slaves && (bus_idle || self.overlap_polls) {
            // Poll the next slave (the broken master does so even while a
            // transaction is still outstanding).
            let slave = state.cursor;
            let mut next = state.clone();
            next.cursor += 1;
            next.outstanding[slave] = Some(0);
            result.push((format!("poll({slave})"), next));
        }
        for slave in 0..self.slaves {
            let Some(attempt) = state.outstanding[slave] else {
                continue;
            };
            // The slave answers: record the reading, release the bus.
            let mut responded = state.clone();
            responded.outstanding[slave] = None;
            responded.ok[slave] = true;
            result.push((format!("respond({slave})"), responded));
            // The watchdog fires: retry in place, or give the slave up.
            let mut timed_out = state.clone();
            if attempt < self.max_retries {
                timed_out.outstanding[slave] = Some(attempt + 1);
                result.push((format!("retry({slave},{})", attempt + 1), timed_out));
            } else {
                timed_out.outstanding[slave] = None;
                timed_out.dead[slave] = true;
                result.push((format!("give_up({slave})"), timed_out));
            }
        }
        result
    }

    fn observe(&self, state: &BusState) -> State {
        let mut observed = State::new();
        for slave in 0..self.slaves {
            if state.outstanding[slave].is_some() {
                observed.insert(Prop::with_args("busy", [slave as i64]));
            }
            if state.ok[slave] {
                observed.insert(Prop::with_args("ok", [slave as i64]));
            }
            if state.dead[slave] {
                observed.insert(Prop::with_args("dead", [slave as i64]));
            }
        }
        observed
    }
}

/// The interval-logic specification of the bus discipline.
///
/// * `Init` — the bus starts idle with no verdicts recorded;
/// * `Exclusive` — two distinct slaves are never simultaneously polled;
/// * `Resolved` — from the interval in which a transaction to `i` is opened,
///   a reading or a declared failure eventually follows;
/// * `Verdict-stable` — a recorded reading is never retracted;
/// * `Verdict-consistent` — a slave is never both read and declared dead.
pub fn sensor_bus_spec() -> Spec {
    let busy = |i: &str| prop_args("busy", vec![var(i)]);
    let ok = |i: &str| prop_args("ok", vec![var(i)]);
    let dead = |i: &str| prop_args("dead", vec![var(i)]);
    let exclusive = data_ne("i", "j").implies(busy("i").and(busy("j")).not().always());
    let resolved = occurs(event(ok("i").or(dead("i")))).within(fwd_from(event(busy("i")))).always();
    let stable = always(ok("i")).within(fwd_from(event(ok("i")))).always();
    let consistent = ok("i").and(dead("i")).not().always();
    Spec::new("sensor-bus")
        .init("Init", busy("m").not().and(ok("m").not()).and(dead("m").not()))
        .axiom("Exclusive", exclusive)
        .axiom("Resolved", resolved)
        .axiom("Verdict-stable", stable)
        .axiom("Verdict-consistent", consistent)
}

/// The exclusivity property alone: `i ≠ j ⊃ □¬(busy(i) ∧ busy(j))`.
pub fn bus_exclusivity_theorem() -> Formula {
    let busy = |i: &str| prop_args("busy", vec![var(i)]);
    data_ne("i", "j").implies(busy("i").and(busy("j")).not().always())
}

fn data_ne(a: &str, b: &str) -> Formula {
    Formula::Pred(Pred::cmp(Expr::data(a), CmpOp::Ne, Expr::data(b)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{collect_runs, explore, explore_backend, random_run, ExploreLimits};
    use ilogic_core::spec::close_free_variables;

    #[test]
    fn disciplined_master_keeps_the_bus_exclusive_exhaustively() {
        let model = SensorBusModel::correct(3, 1);
        let report = explore(&model, ExploreLimits::default(), SensorBusModel::bus_exclusive);
        assert!(report.verified(), "violation: {:?}", report.violation.map(|v| v.actions));
        assert!(report.states > 10);
    }

    #[test]
    fn impatient_master_overlaps_transactions() {
        let model = SensorBusModel::broken(2, 1);
        let report = explore(&model, ExploreLimits::default(), SensorBusModel::bus_exclusive);
        let violation = report.violation.expect("the broken variant must be caught");
        assert!(violation.actions.iter().filter(|a| a.starts_with("poll")).count() >= 2);
    }

    #[test]
    fn every_complete_run_resolves_every_slave() {
        let model = SensorBusModel::correct(2, 1);
        let runs = collect_runs(&model, ExploreLimits::default(), 256);
        assert!(!runs.is_empty());
        for run in &runs {
            let last = run.states().last().expect("runs are non-empty");
            for slave in 0..2i64 {
                let ok = last.holds(&Prop::with_args("ok", [slave]));
                let dead = last.holds(&Prop::with_args("dead", [slave]));
                assert!(ok ^ dead, "slave {slave} unresolved (or double-resolved) in {run}");
            }
        }
    }

    #[test]
    fn explored_runs_satisfy_the_bus_spec() {
        let model = SensorBusModel::correct(2, 1);
        let runs = collect_runs(&model, ExploreLimits::default(), 128);
        let spec = sensor_bus_spec();
        let session = Session::new();
        for trace in &runs {
            let report = session.check_spec(&spec, trace);
            assert!(report.passed(), "spec violated on run {trace}: {:?}", report.failures());
        }
    }

    #[test]
    fn exclusivity_theorem_checked_by_every_applicable_backend() {
        let theorem = close_free_variables(&bus_exclusivity_theorem());
        let session = Session::new();

        let good = explore_backend(&SensorBusModel::correct(2, 1), Default::default(), 128);
        let report = session.check(CheckRequest::new(theorem.clone()).with_backend(good));
        assert_eq!(report.backend, "explore");
        assert!(report.verdict.passed(), "{}", report.verdict);

        let bad = explore_backend(&SensorBusModel::broken(2, 1), Default::default(), 128);
        let report = session.check(CheckRequest::new(theorem.clone()).with_backend(bad));
        assert!(report.verdict.counterexample().is_some());

        let trace = random_run(&SensorBusModel::correct(3, 2), 64, 23);
        assert!(session.check(CheckRequest::new(theorem).on_trace(&trace)).verdict.passed());
    }

    #[test]
    fn exclusivity_is_refuted_identically_by_bounded_and_decide() {
        // As with the ring's uniqueness property: the propositional rendering
        // is not valid, and Bounded and Decide must refute it with the same
        // counterexample computation.
        let exclusive = prop("busy_a").and(prop("busy_b")).not().always();
        let session = Session::new();
        let bounded = session
            .check(CheckRequest::new(exclusive.clone()).bounded(vec!["busy_a", "busy_b"], 4));
        let decide = session.check(CheckRequest::new(exclusive).decide());
        let bounded_cx = bounded.verdict.counterexample().expect("bounded refutes");
        let decide_cx = decide.verdict.counterexample().expect("decide refutes");
        assert_eq!(bounded_cx, decide_cx, "the two refutations must be bit-identical");
    }

    #[test]
    fn random_schedules_never_break_the_spec() {
        let model = SensorBusModel::correct(3, 2);
        let spec = sensor_bus_spec();
        let session = Session::new();
        for seed in 0..10 {
            let trace = random_run(&model, 96, seed);
            let report = session.check_spec(&spec, &trace);
            assert!(report.passed(), "seed {seed}: {:?}", report.failures());
        }
    }
}
