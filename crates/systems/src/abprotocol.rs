//! The Alternating-Bit protocol (Chapter 7).
//!
//! The sender dequeues messages from its input queue, transmits each as a
//! packet `⟨m, v⟩` carrying a one-bit sequence number `v`, and keeps
//! retransmitting until an uncorrupted acknowledgment with the same sequence
//! number arrives; the receiver acknowledges the packets it receives and
//! delivers each new message (enqueues it into the output queue) exactly once.
//! The two directions of the unreliable medium are modelled as lossy channels
//! that may drop or duplicate packets but never reorder them — exactly the
//! unreliable-queue service of Chapter 5.
//!
//! The simulator records the operation events of Figure 7-2:
//! `atDq(m)/afterDq(m)` (sender obtains the next message), `atTs(m, v)`
//! (packet transmission), `afterRs(v)` (uncorrupted acknowledgment received by
//! the sender), `atRr(m, v)/afterRr(m, v)` (packet receipt), `atTr(v)`
//! (acknowledgment transmission), `atEnq(m)/afterEnq(m)` (delivery to the
//! receiving user), together with the sender- and receiver-side expected
//! sequence numbers as the state components `sexp` and `rexp`.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ilogic_core::prelude::*;

/// Configuration of an Alternating-Bit protocol run.
#[derive(Clone, Copy, Debug)]
pub struct AbWorkload {
    /// Number of messages to transfer.
    pub messages: usize,
    /// Probability that a packet or acknowledgment is lost in transit.
    pub loss: f64,
    /// Probability that a delivered packet or acknowledgment is duplicated.
    pub duplication: f64,
    /// RNG seed.
    pub seed: u64,
    /// Safety valve: maximum number of simulation steps.
    pub max_steps: usize,
}

impl Default for AbWorkload {
    fn default() -> AbWorkload {
        AbWorkload { messages: 4, loss: 0.2, duplication: 0.1, seed: 17, max_steps: 4_000 }
    }
}

/// The observable result of a protocol run.
#[derive(Clone, Debug)]
pub struct AbRun {
    /// The recorded computation.
    pub trace: Trace,
    /// Messages handed to the sender, in order.
    pub sent: Vec<i64>,
    /// Messages delivered to the receiving user, in order.
    pub delivered: Vec<i64>,
    /// Number of packet transmissions (including retransmissions).
    pub transmissions: usize,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SenderState {
    AwaitingMessage,
    Sending { message: i64, bit: i64 },
}

/// Runs the protocol and records the instrumented trace.
pub fn simulate(workload: AbWorkload) -> AbRun {
    let mut rng = StdRng::seed_from_u64(workload.seed);
    let mut builder = TraceBuilder::new();
    builder.set_var("sexp", 0i64);
    builder.set_var("rexp", 0i64);
    builder.commit();

    let sent: Vec<i64> = (1..=workload.messages as i64).collect();
    let mut input: VecDeque<i64> = sent.iter().copied().collect();
    let mut delivered: Vec<i64> = Vec::new();
    let mut transmissions = 0usize;

    // The two directions of the unreliable medium (no reordering).
    let mut data_channel: VecDeque<(i64, i64)> = VecDeque::new();
    let mut ack_channel: VecDeque<i64> = VecDeque::new();

    let mut sender = SenderState::AwaitingMessage;
    let mut sender_bit: i64 = 0;
    let mut receiver_bit: i64 = 0;
    let mut last_received: Option<(i64, i64)> = None;

    let mut steps = 0usize;
    while steps < workload.max_steps {
        steps += 1;
        let all_done = input.is_empty()
            && sender == SenderState::AwaitingMessage
            && delivered.len() == workload.messages;
        if all_done {
            break;
        }
        match rng.gen_range(0..4) {
            // Sender actions.
            0 => match sender {
                SenderState::AwaitingMessage => {
                    if let Some(message) = input.pop_front() {
                        // Dq(m): obtain the next message; no transmission during the call.
                        builder
                            .pulse(Prop::plain("atDq"))
                            .pulse(Prop::with_args("atDq", [message]));
                        builder.assert_prop(Prop::plain("inDq"));
                        builder.commit();
                        builder.retract_prop(&Prop::plain("inDq"));
                        builder
                            .pulse(Prop::plain("afterDq"))
                            .pulse(Prop::with_args("afterDq", [message]));
                        builder.set_var("sexp", sender_bit);
                        builder.commit();
                        sender = SenderState::Sending { message, bit: sender_bit };
                    } else {
                        builder.commit();
                    }
                }
                SenderState::Sending { message, bit } => {
                    // Ts(m, v): (re)transmit the current packet.
                    transmissions += 1;
                    builder
                        .pulse(Prop::plain("atTs"))
                        .pulse(Prop::with_args("atTs", [message, bit]));
                    builder.commit();
                    if !rng.gen_bool(workload.loss) {
                        data_channel.push_back((message, bit));
                        if rng.gen_bool(workload.duplication) {
                            data_channel.push_back((message, bit));
                        }
                    }
                }
            },
            // Sender processes an acknowledgment.
            1 => {
                if let Some(ack_bit) = ack_channel.pop_front() {
                    builder
                        .pulse(Prop::plain("afterRs"))
                        .pulse(Prop::with_args("afterRs", [ack_bit]));
                    builder.commit();
                    if let SenderState::Sending { bit, .. } = sender {
                        if ack_bit == bit {
                            sender = SenderState::AwaitingMessage;
                            sender_bit = 1 - sender_bit;
                        }
                    }
                } else {
                    builder.commit();
                }
            }
            // Receiver processes a packet.
            2 => {
                if let Some((message, bit)) = data_channel.pop_front() {
                    builder
                        .pulse(Prop::plain("atRr"))
                        .pulse(Prop::with_args("atRr", [message, bit]))
                        .pulse(Prop::with_args("afterRr", [message, bit]));
                    builder.commit();
                    last_received = Some((message, bit));
                    if bit == receiver_bit {
                        // A new message: deliver it before acknowledging a
                        // packet with a different sequence number.
                        builder
                            .pulse(Prop::plain("atEnq"))
                            .pulse(Prop::with_args("atEnq", [message]));
                        builder.set_var("rexp", receiver_bit);
                        builder.commit();
                        builder
                            .pulse(Prop::plain("afterEnq"))
                            .pulse(Prop::with_args("afterEnq", [message]));
                        builder.commit();
                        delivered.push(message);
                        receiver_bit = 1 - receiver_bit;
                    }
                } else {
                    builder.commit();
                }
            }
            // Receiver (re)acknowledges the last packet received.
            _ => {
                if let Some((message, bit)) = last_received {
                    builder
                        .pulse(Prop::plain("atTr"))
                        .pulse(Prop::with_args("atTr", [message, bit]));
                    builder.commit();
                    if !rng.gen_bool(workload.loss) {
                        ack_channel.push_back(bit);
                        if rng.gen_bool(workload.duplication) {
                            ack_channel.push_back(bit);
                        }
                    }
                } else {
                    builder.commit();
                }
            }
        }
    }
    builder.commit();
    AbRun { trace: builder.finish(), sent, delivered, transmissions }
}

/// A faulty sender that does not alternate its sequence numbers (it stamps
/// every packet with bit 0), which breaks the protocol over a lossy channel and
/// violates the sender specification.
pub fn simulate_stuck_bit(workload: AbWorkload) -> AbRun {
    let mut run = simulate(AbWorkload { loss: 0.0, duplication: 0.0, ..workload });
    // Rewrite the recorded packets so that every transmission carries bit 0,
    // modelling the faulty sender's visible behaviour.
    let states: Vec<State> = run
        .trace
        .states()
        .iter()
        .map(|s| {
            let mut rebuilt = State::new();
            for (name, value) in s.vars() {
                rebuilt.set_var(name, value.clone());
            }
            for p in s.props() {
                if p.name == "atTs" && p.args.len() == 2 {
                    rebuilt.insert(Prop::with_args("atTs", [p.args[0].clone(), Value::Int(0)]));
                } else {
                    rebuilt.insert(p.clone());
                }
            }
            rebuilt
        })
        .collect();
    run.trace = Trace::finite(states);
    run
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_run_delivers_everything_in_order() {
        let run = simulate(AbWorkload { loss: 0.0, duplication: 0.0, ..AbWorkload::default() });
        assert_eq!(run.delivered, run.sent);
        assert!(run.transmissions >= run.sent.len());
    }

    #[test]
    fn lossy_runs_still_deliver_in_order_without_duplicates() {
        for seed in 0..8 {
            let run =
                simulate(AbWorkload { seed, loss: 0.3, duplication: 0.2, ..AbWorkload::default() });
            // Whatever was delivered is a prefix of the sent sequence, without
            // duplication or reordering.
            assert!(run.delivered.len() <= run.sent.len());
            assert_eq!(run.delivered, run.sent[..run.delivered.len()], "seed {seed}");
        }
    }

    #[test]
    fn retransmissions_happen_under_loss() {
        let run = simulate(AbWorkload { loss: 0.5, seed: 23, ..AbWorkload::default() });
        assert!(run.transmissions > run.delivered.len());
    }

    #[test]
    fn stuck_bit_variant_reuses_sequence_number_zero() {
        let run = simulate_stuck_bit(AbWorkload { messages: 3, ..AbWorkload::default() });
        let mut bits = Vec::new();
        for state in run.trace.states() {
            for args in state.args_of("atTs") {
                if let Some(bit) = args.get(1).and_then(Value::as_int) {
                    bits.push(bit);
                }
            }
        }
        assert!(!bits.is_empty());
        assert!(bits.iter().all(|&b| b == 0));
    }
}
