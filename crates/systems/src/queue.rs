//! Queue simulators for Chapter 5: a reliable FIFO queue, a LIFO stack, and an
//! intermittently unreliable queue.
//!
//! The simulators execute a workload of `Enq`/`Dq` operations against an
//! in-memory data structure and record an instrumented trace: every operation
//! contributes `atOp(args)`, `inOp` and `afterOp(args)` states following the
//! abstract-operation axioms of §2.2 (entry, an interior state, exit).  A
//! deliberately faulty variant is provided so the specifications can be seen to
//! reject incorrect implementations.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ilogic_core::prelude::*;

/// Which queue discipline the simulator implements.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum QueueKind {
    /// First-in first-out, no losses.
    Reliable,
    /// Last-in first-out (the "Stack" variant obtained by exchanging the
    /// `atEnq` terms in the queue axiom).
    Stack,
    /// First-in first-out, but an enqueue may silently lose its value with the
    /// given probability (the unreliable queue of Figure 5-1).
    Unreliable {
        /// Probability in `[0, 1)` that an enqueued value is lost.
        loss: f64,
    },
    /// A deliberately incorrect implementation that services dequeues from the
    /// *middle* of the queue, violating the FIFO axiom; used to demonstrate
    /// that the specification rejects bad implementations.
    FaultyReordering,
}

/// Configuration of a queue workload.
#[derive(Clone, Copy, Debug)]
pub struct QueueWorkload {
    /// Number of distinct values enqueued.
    pub items: usize,
    /// Number of times each value is (re-)enqueued when the queue is unreliable.
    pub retries: usize,
    /// RNG seed.
    pub seed: u64,
    /// If `true`, all enqueues are performed before the first dequeue
    /// (the workload shape under which the report's stack axiom is exact).
    pub phased: bool,
}

impl Default for QueueWorkload {
    fn default() -> QueueWorkload {
        QueueWorkload { items: 6, retries: 3, seed: 7, phased: false }
    }
}

/// Runs the workload against the chosen queue and records the instrumented trace.
pub fn simulate(kind: QueueKind, workload: QueueWorkload) -> Trace {
    let mut rng = StdRng::seed_from_u64(workload.seed);
    let mut builder = TraceBuilder::new();
    builder.commit(); // initial quiescent state

    let mut backing: Vec<i64> = Vec::new();
    let mut next_value: i64 = 1;
    let mut pending: Vec<i64> = (0..workload.items)
        .map(|_| {
            let v = next_value;
            next_value += 1;
            v
        })
        .collect();
    pending.reverse();

    // Interleave enqueues and dequeues; values are distinct (except that the
    // unreliable queue may re-enqueue a value that was lost).
    let mut dequeued = 0usize;
    let mut losses = 0usize;
    while !pending.is_empty() || !backing.is_empty() {
        let can_enqueue = !pending.is_empty();
        let can_dequeue = !backing.is_empty();
        let do_enqueue = can_enqueue && (workload.phased || !can_dequeue || rng.gen_bool(0.6));
        if do_enqueue {
            let value = *pending.last().expect("non-empty");
            let mut attempts = 0usize;
            loop {
                attempts += 1;
                run_operation(&mut builder, "Enq", &[Value::Int(value)]);
                let lost = matches!(kind, QueueKind::Unreliable { loss } if rng.gen_bool(loss))
                    && attempts < workload.retries;
                if lost {
                    losses += 1;
                    continue;
                }
                backing.push(value);
                break;
            }
            pending.pop();
        } else if can_dequeue {
            let index = match kind {
                QueueKind::Reliable | QueueKind::Unreliable { .. } => 0,
                QueueKind::Stack => backing.len() - 1,
                QueueKind::FaultyReordering => {
                    if backing.len() > 1 {
                        rng.gen_range(0..backing.len())
                    } else {
                        0
                    }
                }
            };
            let value = backing.remove(index);
            run_operation(&mut builder, "Dq", &[Value::Int(value)]);
            dequeued += 1;
        }
    }
    let _ = (dequeued, losses);
    builder.commit();
    builder.finish()
}

/// Records one complete operation execution (`at`, `in`, `after` states).
fn run_operation(builder: &mut TraceBuilder, op: &str, args: &[Value]) {
    let at = Prop::with_args(format!("at{op}"), args.to_vec());
    let at_bare = Prop::plain(format!("at{op}"));
    let during = Prop::plain(format!("in{op}"));
    let after = Prop::with_args(format!("after{op}"), args.to_vec());
    let after_bare = Prop::plain(format!("after{op}"));

    builder.pulse(at).pulse(at_bare).assert_prop(during.clone());
    builder.commit();
    builder.commit(); // an interior state with only inOp
    builder.retract_prop(&during);
    builder.pulse(after).pulse(after_bare);
    builder.commit();
    builder.commit(); // quiescent gap between operations
}

/// The values dequeued in a trace, in order of their `afterDq` events.
pub fn dequeue_order(trace: &Trace) -> Vec<i64> {
    let mut order = Vec::new();
    let mut previous_empty = true;
    for state in trace.states() {
        let now: Vec<i64> = state
            .args_of("afterDq")
            .iter()
            .filter_map(|args| args.first().and_then(Value::as_int))
            .collect();
        if previous_empty {
            order.extend(now.iter().copied());
        }
        previous_empty = now.is_empty();
    }
    order
}

/// The values enqueued in a trace (first `atEnq` occurrence per value), in order.
pub fn enqueue_order(trace: &Trace) -> Vec<i64> {
    let mut order: Vec<i64> = Vec::new();
    for state in trace.states() {
        for args in state.args_of("atEnq") {
            if let Some(v) = args.first().and_then(Value::as_int) {
                if !order.contains(&v) {
                    order.push(v);
                }
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_queue_preserves_fifo_order() {
        let trace = simulate(QueueKind::Reliable, QueueWorkload::default());
        let enq = enqueue_order(&trace);
        let deq = dequeue_order(&trace);
        assert_eq!(enq.len(), deq.len());
        assert_eq!(enq, deq, "reliable queue must dequeue in enqueue order");
    }

    #[test]
    fn stack_reverses_order_locally() {
        let trace = simulate(
            QueueKind::Stack,
            QueueWorkload { items: 4, retries: 1, seed: 3, phased: false },
        );
        let deq = dequeue_order(&trace);
        assert_eq!(deq.len(), 4);
    }

    #[test]
    fn unreliable_queue_dequeues_a_subsequence_in_order() {
        let trace = simulate(
            QueueKind::Unreliable { loss: 0.4 },
            QueueWorkload { items: 8, retries: 4, seed: 11, phased: false },
        );
        let deq = dequeue_order(&trace);
        // Everything dequeued must appear in increasing order (values are
        // enqueued in increasing order and the queue never reorders).
        let mut sorted = deq.clone();
        sorted.sort_unstable();
        assert_eq!(deq, sorted);
        assert!(!deq.is_empty());
    }

    #[test]
    fn faulty_queue_eventually_reorders() {
        // With enough items the middle-servicing queue produces an out-of-order
        // dequeue for some seed.
        let mut reordered = false;
        for seed in 0..20 {
            let trace = simulate(
                QueueKind::FaultyReordering,
                QueueWorkload { items: 6, retries: 1, seed, phased: false },
            );
            let deq = dequeue_order(&trace);
            let mut sorted = deq.clone();
            sorted.sort_unstable();
            if deq != sorted {
                reordered = true;
                break;
            }
        }
        assert!(reordered, "faulty queue should reorder for some schedule");
    }

    #[test]
    fn operation_axioms_hold_for_the_instrumentation() {
        let trace = simulate(
            QueueKind::Reliable,
            QueueWorkload { items: 3, retries: 1, seed: 1, phased: false },
        );
        let ev = Evaluator::new(&trace);
        for op in ["Enq", "Dq"] {
            for (label, axiom) in Operation::new(op).axioms() {
                assert!(ev.check(&axiom), "operation axiom {label} violated");
            }
            assert!(ev.check(&Operation::new(op).termination_axiom()));
        }
    }
}
