//! # ilogic-systems
//!
//! Discrete-event simulators and interval-logic specifications for the four
//! case studies of *"An Interval Logic for Higher-Level Temporal Reasoning"*:
//!
//! * [`queue`] — reliable queue, stack and intermittently unreliable queue
//!   (Chapter 5), with instrumented `Enq`/`Dq` operation traces;
//! * [`selftimed`] — the request/acknowledge protocol and the two-user arbiter
//!   (Chapter 6);
//! * [`abprotocol`] — the Alternating-Bit protocol over lossy channels
//!   (Chapter 7);
//! * [`mutex`] — the distributed mutual-exclusion algorithm (Chapter 8);
//! * [`specs`] — the specification figures of those chapters, rendered with the
//!   `ilogic-core` DSL and checkable against the simulator traces;
//! * [`explore`] — a small-scope exhaustive explorer that enumerates *every*
//!   interleaving of a small configuration (used to verify the Chapter 8
//!   algorithm exhaustively rather than on sampled schedules).
//!
//! Every simulator also provides a deliberately faulty variant so that the
//! specifications can be demonstrated to *reject* incorrect implementations,
//! not merely accept correct ones.

pub mod abprotocol;
pub mod explore;
pub mod mutex;
pub mod queue;
pub mod ring;
pub mod selftimed;
pub mod sensorbus;
pub mod specs;
