//! # ilogic
//!
//! Umbrella crate for the reproduction of *"An Interval Logic for Higher-Level
//! Temporal Reasoning"* (Schwartz, Melliar-Smith, Vogt, Plaisted; NASA CR
//! 172262 / PODC 1983).  It re-exports the four library crates:
//!
//! * [`core`] (`ilogic-core`) — the interval logic itself: syntax, formal
//!   model, `*`-modifier reduction, valid-formula catalogue, bounded validity
//!   checking, specifications, parser and the LTL reduction;
//! * [`temporal`] (`ilogic-temporal`) — the Appendix B linear-time temporal
//!   logic substrate: tableau graphs, Algorithm A, Algorithm B, and the
//!   specialized theories they combine with;
//! * [`lowlevel`] (`ilogic-lowlevel`) — the Appendix C low-level language,
//!   its constraint semantics, translations and executable specifications;
//! * [`systems`] (`ilogic-systems`) — the case-study simulators of Chapters
//!   5–8 (queues, self-timed arbiter, Alternating-Bit protocol, distributed
//!   mutual exclusion) together with their interval-logic specifications.
//!
//! See the crate-level documentation of each member and the runnable programs
//! under `examples/` for entry points.

#![forbid(unsafe_code)]

pub use ilogic_core as core;
pub use ilogic_lowlevel as lowlevel;
pub use ilogic_systems as systems;
pub use ilogic_temporal as temporal;
