//! # ilogic
//!
//! Umbrella crate for the reproduction of *"An Interval Logic for Higher-Level
//! Temporal Reasoning"* (Schwartz, Melliar-Smith, Vogt, Plaisted; NASA CR
//! 172262 / PODC 1983), fronted by the unified [`Session`] checking API.
//!
//! New to the codebase?  Read `ARCHITECTURE.md` at the repository root
//! first — it maps the crates, explains the arena + snapshot + pool
//! concurrency model the parallel engines share, compares the four
//! backends, and states the determinism guarantees.  Its full text is
//! reproduced at the end of this page, under [Architecture](#architecture).
//!
//! # Quick start
//!
//! Every way of asking "does this formula hold?" goes through one door: build
//! a [`Session`], describe the check with a builder-style [`CheckRequest`]
//! selecting a [`Backend`], and read the uniform [`Verdict`] (plus timing and
//! memoization statistics) off the returned [`CheckReport`]:
//!
//! ```
//! use ilogic::core::dsl::*;
//! use ilogic::core::prelude::*;
//! use ilogic::{CheckRequest, Session, Verdict};
//!
//! let mut session = Session::new();
//!
//! // [ A => *B ] <> D over a concrete computation.
//! let formula = eventually(prop("D")).within(fwd(event(prop("A")), must(event(prop("B")))));
//! let trace = Trace::finite(vec![
//!     State::new(),
//!     State::new().with("A"),
//!     State::new().with("A").with("D"),
//!     State::new().with("A").with("B"),
//! ]);
//! assert_eq!(session.check(CheckRequest::new(formula.clone()).on_trace(&trace)).verdict,
//!            Verdict::Holds);
//!
//! // The same formula is not *valid*: bounded search produces a countermodel.
//! let report = session.check(CheckRequest::new(formula).bounded(["A", "B", "D"], 3));
//! assert!(report.verdict.counterexample().is_some());
//!
//! // Theorems of the translatable fragment are settled exactly by the tableau.
//! let theorem = always(prop("P")).implies(eventually(prop("P")));
//! assert_eq!(session.check(CheckRequest::new(theorem).decide()).verdict, Verdict::Holds);
//! ```
//!
//! Specifications (Init clauses + axioms) check the same way, with clause
//! subformulas hash-consed across the whole session:
//!
//! ```
//! use ilogic::core::dsl::*;
//! use ilogic::core::prelude::*;
//! use ilogic::Session;
//!
//! let spec = Spec::new("toy").init("I1", not(prop("R")));
//! let trace = Trace::finite(vec![State::new()]);
//! assert!(Session::new().check_spec(&spec, &trace).passed());
//! ```
//!
//! # Which checker do I want?
//!
//! | Backend | Ask it for | Guarantee | Cost | Parallelism |
//! |---------|------------|-----------|------|-------------|
//! | [`Backend::Trace`] (`.on_trace(…)`) | conformance of one simulated/recorded run | exact for that computation | linear-ish in trace × formula (memoized) | single-threaded (one trace) |
//! | [`Backend::Explore`] (`.over_runs(…)` / `ilogic::systems::explore::explore_backend`) | conformance of **every** interleaving of a small model | exact for the enumerated runs; counterexample run on failure | #runs × trace-check | runs batched across the pool; lazy sources stream batch by batch |
//! | [`Backend::Bounded`] (`.bounded(props, n)`) | validity evidence / refutation of a schema | counterexamples are genuine; `ValidUpTo(n)` is evidence, not proof | exponential in `n` and `props` — keep both small | sharded sweep: `n` workers cover interleaved slices with early-exit cancellation |
//! | [`Backend::Decide`] (`.decide()`) | theoremhood in the LTL-translatable fragment | exact (tableau decision); `Unknown` outside the fragment | tableau is exponential worst-case, fast on the report's idioms | level-parallel tableau build, sharded prune analyses, sharded refutation sweep |
//!
//! Rule of thumb: simulator and explorer traces → `Trace`/`Explore`; "is this
//! schema a theorem?" → `Decide` first and `Bounded` as the refutation
//! workhorse; the catalogue and the test suite use `Bounded` throughout.
//!
//! # Parallelism
//!
//! Fan a check across a worker pool with
//! [`CheckRequest::with_parallelism`]([`Parallelism::Auto`] /
//! [`Parallelism::Fixed`]`(n)` / [`Parallelism::Off`]), set a session-wide
//! default with [`Session::set_parallelism`] (which also fans
//! [`Session::check_spec`] clause checking), or force a whole process onto
//! the pool with the `ILOGIC_TEST_PARALLEL` environment variable (`1`/`auto`,
//! a worker count, or `0` to force off).  `ilogic::systems::explore::explore`
//! honours the same override for breadth-first model exploration, as do the
//! low-level pipeline's `ilogic::lowlevel::decide::prune` /
//! `satisfiable_graph`.  At the temporal layer,
//! `ilogic::temporal::algorithm_b::AlgorithmB::with_parallelism` fans the
//! Appendix B condition fixpoint (and its end-of-run theory check) across
//! the same pool.
//!
//! Verdicts never depend on the worker count: the parallel engines pick
//! counterexamples deterministically (lowest enumeration index wins), so
//! parallel runs are bit-identical to sequential ones — same `Verdict`, same
//! counterexample trace, same exploration report.  Worker evaluation is
//! shared-nothing over a frozen [`core::arena::ArenaSnapshot`]; per-worker
//! memo statistics are merged into the report, and the session accumulates
//! them across requests ([`Session::cumulative_memo`]).
//!
//! # Layers
//!
//! The member crates remain the low-level layer, fully public:
//!
//! * [`core`] (`ilogic-core`) — syntax, formal model, hash-consed
//!   [`core::arena`], bounded checking, specifications, parser, LTL reduction,
//!   and the [`core::session`] module re-exported here;
//! * [`temporal`] (`ilogic-temporal`) — the Appendix B temporal substrate:
//!   tableau graphs, Algorithm A, Algorithm B, specialized theories;
//! * [`lowlevel`] (`ilogic-lowlevel`) — the Appendix C low-level language and
//!   its decision pipeline;
//! * [`systems`] (`ilogic-systems`) — the Chapter 5–8 case-study simulators,
//!   their specifications, and the exhaustive explorer.
//!
//! Direct use of `Evaluator::check`, `BoundedChecker::counterexample`,
//! `explore`, or the tableau remains supported for callers that need the
//! engine-specific knobs; prefer [`Session`] everywhere else.
//!
//! ---
#![doc = include_str!("../ARCHITECTURE.md")]
#![forbid(unsafe_code)]

pub use ilogic_core as core;
pub use ilogic_lowlevel as lowlevel;
pub use ilogic_systems as systems;
pub use ilogic_temporal as temporal;

pub use ilogic_core::pool::{Parallelism, WorkerPool};
pub use ilogic_core::session::{
    Backend, CheckReport, CheckRequest, CheckStats, RunSource, Session, Verdict,
};
