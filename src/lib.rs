//! # ilogic
//!
//! Umbrella crate for the reproduction of *"An Interval Logic for Higher-Level
//! Temporal Reasoning"* (Schwartz, Melliar-Smith, Vogt, Plaisted; NASA CR
//! 172262 / PODC 1983), fronted by the unified [`Session`] checking API.
//!
//! New to the codebase?  Read `ARCHITECTURE.md` at the repository root
//! first — it maps the crates, explains the arena + snapshot + pool
//! concurrency model the parallel engines share, compares the four
//! backends, and states the determinism guarantees.  Its full text is
//! reproduced at the end of this page, under [Architecture](#architecture).
//!
//! # Quick start
//!
//! Every way of asking "does this formula hold?" goes through one door: build
//! a [`Session`], describe the check with a builder-style [`CheckRequest`]
//! selecting a [`Backend`], and read the uniform [`Verdict`] (plus timing and
//! memoization statistics) off the returned [`CheckReport`].  One-shot checks
//! use [`Session::check`]; batches use the job API ([`Session::submit`] /
//! [`Session::check_many`]) below:
//!
//! ```
//! use ilogic::core::dsl::*;
//! use ilogic::core::prelude::*;
//! use ilogic::{CheckRequest, Session, Verdict};
//!
//! let mut session = Session::new();
//!
//! // [ A => *B ] <> D over a concrete computation.
//! let formula = eventually(prop("D")).within(fwd(event(prop("A")), must(event(prop("B")))));
//! let trace = Trace::finite(vec![
//!     State::new(),
//!     State::new().with("A"),
//!     State::new().with("A").with("D"),
//!     State::new().with("A").with("B"),
//! ]);
//! assert_eq!(session.check(CheckRequest::new(formula.clone()).on_trace(&trace)).verdict,
//!            Verdict::Holds);
//!
//! // The same formula is not *valid*: bounded search produces a countermodel.
//! let report = session.check(CheckRequest::new(formula).bounded(["A", "B", "D"], 3));
//! assert!(report.verdict.counterexample().is_some());
//!
//! // Theorems of the translatable fragment are settled exactly by the tableau.
//! let theorem = always(prop("P")).implies(eventually(prop("P")));
//! assert_eq!(session.check(CheckRequest::new(theorem).decide()).verdict, Verdict::Holds);
//! ```
//!
//! Specifications (Init clauses + axioms) check the same way, with clause
//! subformulas hash-consed across the whole session:
//!
//! ```
//! use ilogic::core::dsl::*;
//! use ilogic::core::prelude::*;
//! use ilogic::Session;
//!
//! let spec = Spec::new("toy").init("I1", not(prop("R")));
//! let trace = Trace::finite(vec![State::new()]);
//! assert!(Session::new().check_spec(&spec, &trace).passed());
//! ```
//!
//! # Batched job submission
//!
//! A service workload is many checks with deadlines, not one: enqueue
//! requests with [`Session::submit`] (returning a [`JobHandle`] per job) or
//! hand a whole batch to [`Session::check_many`], and the
//! [`core::scheduler`] multiplexes the queue across the worker pool — a
//! two-millisecond `Decide` job no longer waits behind a two-minute
//! `Bounded` sweep.  Batch results are **bit-identical** (verdicts,
//! counterexamples, deterministic statistics) to a sequential loop of
//! single-threaded [`Session::check`] calls in submission order, at every
//! worker count.
//!
//! ```
//! use ilogic::core::dsl::*;
//! use ilogic::{CheckRequest, Parallelism, ResourceBudget, Session};
//! use std::time::Duration;
//!
//! let mut session = Session::new().with_parallelism(Parallelism::Fixed(4));
//! // One budget for the whole batch: structural caps + a shared deadline.
//! let budget = ResourceBudget::default().with_timeout(Duration::from_secs(5));
//! let reports = session.check_many(vec![
//!     CheckRequest::new(always(prop("P")).implies(eventually(prop("P"))))
//!         .decide()
//!         .with_budget(budget.clone()),
//!     CheckRequest::new(prop("P").or(prop("P").not()))
//!         .bounded(["P"], 3)
//!         .with_budget(budget.clone()),
//! ]);
//! assert!(reports.iter().all(|r| r.verdict.passed()));
//! ```
//!
//! Reports serialize to stable JSON for crossing process boundaries —
//! [`CheckReport::to_json`] / [`CheckReport::from_json`] round-trip every
//! field, counterexample traces included, with no external dependencies.
//!
//! ## Migration note (`check` → `submit` / `check_many`)
//!
//! Pre-PR 4 code used one-shot [`Session::check`] in a loop and per-layer
//! limit types.  The mapping onto the job API:
//!
//! * `for r in requests { session.check(r) }` → [`Session::check_many`]
//!   (same reports, in order, cross-request parallel) or [`Session::submit`]
//!   + [`Session::wait`] for incremental consumption;
//! * per-layer limit types (`BuildLimits` / `ConditionLimits`) and ad-hoc
//!   refutation caps → one [`ResourceBudget`]
//!   ([`CheckRequest::with_budget`] or [`Session::set_budget`]); the old
//!   shim types were removed once all call sites migrated;
//! * matching on `Verdict::Unknown` → `Verdict::Unknown { exhausted }`,
//!   where `exhausted` names the budget resource that ran out
//!   ([`Exhaustion`]), or is `None` outside the decidable fragment.
//!
//! ## Migration note (`&mut Session` → `&Session`)
//!
//! Since PR 10 every checking entry point — [`Session::check`],
//! [`Session::submit`], [`Session::check_many`], [`Session::wait`] — takes
//! `&self`: interning, the job queue, and the verdict cache live behind
//! short-lived internal locks, so a session can be shared by reference
//! across threads (the warm-cache model `ilogic::server` runs).  Migrating:
//!
//! * drop the `mut` from `let mut session = Session::new()` — an immutable
//!   binding now checks, submits, and waits;
//! * code that wants to hand "interning" and "checking" to different
//!   components can split the surface into the `Copy` handles
//!   `Session::interner()` ([`ilogic_core::session::InternHandle`]) and
//!   `Session::checker()` ([`ilogic_core::session::CheckHandle`]);
//! * the deprecated `submit_mut`/`check_many_mut` shims forward to the
//!   `&self` methods and will be removed next release;
//! * duplicate requests now replay cached outcomes —
//!   [`CheckStats`]`.cache` labels hits per request,
//!   `Session::cumulative_cache` totals them, and
//!   `Session::with_verdict_cache(false)` restores the old
//!   always-recompute behaviour.
//!
//! # Which checker do I want?
//!
//! | Backend | Ask it for | Guarantee | Cost | Parallelism | Budget caps that apply |
//! |---------|------------|-----------|------|-------------|------------------------|
//! | [`Backend::Trace`] (`.on_trace(…)`) | conformance of one simulated/recorded run | exact for that computation | linear-ish in trace × formula (memoized) | single-threaded (one trace) | deadline/cancel only |
//! | [`Backend::Explore`] (`.over_runs(…)` / `ilogic::systems::explore::explore_backend`) | conformance of **every** interleaving of a small model | exact for the enumerated runs; counterexample run on failure | #runs × trace-check | runs batched across the pool; lazy sources stream batch by batch | `max_enumeration` over runs; deadline/cancel |
//! | [`Backend::Bounded`] (`.bounded(props, n)`) | validity evidence / refutation of a schema | counterexamples are genuine; `ValidUpTo(n)` is evidence, not proof | exponential in `n` and `props` — keep both small | sharded sweep: `n` workers cover interleaved slices with early-exit cancellation | `max_enumeration` over computations; deadline/cancel |
//! | [`Backend::Decide`] (`.decide()`) | theoremhood in the LTL-translatable fragment | exact (tableau decision); `Unknown { exhausted }` outside the fragment or under budget | tableau is exponential worst-case, fast on the report's idioms | level-parallel tableau build, sharded prune analyses, sharded refutation sweep | `max_nodes`/`max_edges` (tableau), `max_enumeration` (refutation); deadline/cancel |
//! | [`Backend::Auto`] (`.auto()`) | "pick the right engine for me" | the pre-flight cost estimator routes to `Decide` or `Bounded`; the report names the routed backend and carries an `R001` routing diagnostic | the routed engine's cost plus microseconds of analysis | the routed engine's shape | the routed engine's caps; routing adjusts `max_implicants` for predicted condition blowups |
//!
//! Rule of thumb: simulator and explorer traces → `Trace`/`Explore`; "is this
//! schema a theorem?" → `Auto`, or hand-pick `Decide` first and `Bounded` as
//! the refutation workhorse; the catalogue and the test suite use `Bounded`
//! throughout.  Every check also runs the pre-flight analysis pass
//! ([`ilogic_core::analysis`]): lints and a cost estimate ride in each
//! report, and [`CheckRequest::with_preflight`] rejects predicted-over-budget
//! jobs at submit time with a `C002` diagnostic instead of occupying a
//! worker.
//! Whatever the backend, running out of any [`ResourceBudget`] resource
//! yields `Verdict::Unknown { exhausted: Some(…) }` — a budget can withhold
//! an answer but never flip one.
//!
//! # Parallelism
//!
//! Fan a check across a worker pool with
//! [`CheckRequest::with_parallelism`]([`Parallelism::Auto`] /
//! [`Parallelism::Fixed`]`(n)` / [`Parallelism::Off`]), set a session-wide
//! default with [`Session::set_parallelism`] (which also fans
//! [`Session::check_spec`] clause checking), or force a whole process onto
//! the pool with the `ILOGIC_TEST_PARALLEL` environment variable (`1`/`auto`,
//! a worker count, or `0` to force off).  `ilogic::systems::explore::explore`
//! honours the same override for breadth-first model exploration, as do the
//! low-level pipeline's `ilogic::lowlevel::decide::prune` /
//! `satisfiable_graph`.  At the temporal layer,
//! `ilogic::temporal::algorithm_b::AlgorithmB::with_parallelism` fans the
//! Appendix B condition fixpoint (and its end-of-run theory check) across
//! the same pool.
//!
//! Verdicts never depend on the worker count: the parallel engines pick
//! counterexamples deterministically (lowest enumeration index wins), so
//! parallel runs are bit-identical to sequential ones — same `Verdict`, same
//! counterexample trace, same exploration report.  Worker evaluation is
//! shared-nothing over a frozen [`core::arena::ArenaSnapshot`]; per-worker
//! memo statistics are merged into the report, and the session accumulates
//! them across requests ([`Session::cumulative_memo`]).
//!
//! # Layers
//!
//! The member crates remain the low-level layer, fully public:
//!
//! * [`core`] (`ilogic-core`) — syntax, formal model, hash-consed
//!   [`core::arena`], bounded checking, specifications, parser, LTL reduction,
//!   and the [`core::session`] module re-exported here;
//! * [`temporal`] (`ilogic-temporal`) — the Appendix B temporal substrate:
//!   tableau graphs, Algorithm A, Algorithm B, specialized theories;
//! * [`lowlevel`] (`ilogic-lowlevel`) — the Appendix C low-level language and
//!   its decision pipeline;
//! * [`systems`] (`ilogic-systems`) — the Chapter 5–8 case-study simulators,
//!   their specifications, and the exhaustive explorer.
//!
//! Direct use of `Evaluator::check`, `BoundedChecker::counterexample`,
//! `explore`, or the tableau remains supported for callers that need the
//! engine-specific knobs; prefer [`Session`] everywhere else.
//!
//! ---
#![doc = include_str!("../ARCHITECTURE.md")]

pub use ilogic_core as core;
pub use ilogic_lowlevel as lowlevel;
pub use ilogic_server as server;
pub use ilogic_systems as systems;
pub use ilogic_temporal as temporal;

pub use ilogic_core::pool::{CancelToken, Exhaustion, Parallelism, ResourceBudget, WorkerPool};
pub use ilogic_core::scheduler::{JobHandle, JobId};
pub use ilogic_core::session::{
    Backend, CacheStats, CheckHandle, CheckReport, CheckRequest, CheckStats, ErrorReport,
    InternHandle, RunSource, Session, Verdict,
};
