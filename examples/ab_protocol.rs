//! Chapter 7: the Alternating-Bit protocol over lossy channels, checked against
//! the Sender and Receiver specifications of Figures 7-3 and 7-4 through the
//! unified `Session` API.
//!
//! Run with `cargo run --example ab_protocol`.

use ilogic::systems::abprotocol::{simulate, simulate_stuck_bit, AbWorkload};
use ilogic::systems::specs;
use ilogic::Session;

fn main() {
    let session = Session::new();
    let workload =
        AbWorkload { messages: 3, loss: 0.25, duplication: 0.1, seed: 29, max_steps: 2_000 };

    println!("== lossy run ({}% loss) ==", (workload.loss * 100.0) as u32);
    let run = simulate(workload);
    println!(
        "sent {:?}, delivered {:?}, {} transmissions over {} recorded states",
        run.sent,
        run.delivered,
        run.transmissions,
        run.trace.len()
    );
    println!("\n-- Sender specification (Figure 7-3) --");
    print!("{}", session.check_spec(&specs::ab_sender_spec(), &run.trace));
    println!("\n-- Receiver specification (Figure 7-4) --");
    print!("{}", session.check_spec(&specs::ab_receiver_spec(), &run.trace));

    println!("\n== a faulty sender that never alternates its sequence number ==");
    let faulty = simulate_stuck_bit(AbWorkload { messages: 3, ..workload });
    let report = session.check_spec(&specs::ab_sender_spec(), &faulty.trace);
    print!("{report}");
    if !report.passed() {
        println!("(as expected, the Sender specification rejects the stuck-bit sender)");
    }
}
