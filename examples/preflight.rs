//! Pre-flight spec analysis end to end: lint the four seed system
//! specifications, print the findings as a table, route a few checks through
//! `Backend::Auto`, and show a predicted-over-budget job being rejected at
//! submit time — `Unknown { exhausted }` with a `C002` diagnostic in
//! nanoseconds, instead of a worker grinding until the budget trips.
//!
//! Run with `cargo run --release --example preflight`.

use ilogic::core::analysis::{lint_spec, Severity};
use ilogic::core::parser::parse_formula;
use ilogic::systems::specs;
use ilogic::{CheckRequest, ResourceBudget, Session, Verdict};

fn main() {
    // -- 1. Lint the seed specifications ------------------------------------
    let seed_specs = [
        specs::unreliable_queue_spec(),
        specs::request_ack_spec("R", "A"),
        specs::ab_sender_spec(),
        specs::mutual_exclusion_spec(),
    ];
    println!("Linting {} seed specifications:\n", seed_specs.len());
    println!("{:<28} {:<9} {:<6} finding", "spec", "severity", "code");
    println!("{}", "-".repeat(76));
    let mut findings = 0usize;
    for spec in &seed_specs {
        for diagnostic in lint_spec(spec) {
            findings += 1;
            println!(
                "{:<28} {:<9} {:<6} {}",
                spec.name(),
                diagnostic.severity.to_string(),
                diagnostic.code.as_str(),
                diagnostic.message
            );
            assert!(diagnostic.severity < Severity::Error, "seed specs must lint clean of errors");
        }
    }
    if findings == 0 {
        println!("{:<28} (all four specs lint clean)", "—");
    }

    // -- 2. Auto-routing ----------------------------------------------------
    println!("\nBackend::Auto routing (the R001 record explains each choice):\n");
    let session = Session::new();
    for source in ["[] P -> P", "[ => Q ] [] P", "[ A => B ] <> D"] {
        let formula = parse_formula(source).expect("corpus syntax");
        let report = session.check(CheckRequest::new(formula).auto());
        println!("  {source:<18} -> [{}] {}", report.backend, report.verdict);
        for diagnostic in &report.diagnostics {
            println!("      {diagnostic}");
        }
    }

    // -- 3. Pre-flight admission -------------------------------------------
    // A 4-proposition depth-6 sweep enumerates ~10^8 computations — far past
    // the default 2M enumeration cap.  Without pre-flight the job would
    // occupy a worker until the cap trips mid-sweep; with it, the session
    // answers at submit time.
    println!("\nPre-flight admission:\n");
    let wide = parse_formula("P & Q | R & S").expect("corpus syntax");
    let request = CheckRequest::new(wide)
        .bounded(["P", "Q", "R", "S"], 6)
        .with_budget(ResourceBudget::default())
        .with_preflight();
    let started = std::time::Instant::now();
    let report = session.check(request);
    let elapsed = started.elapsed();
    assert!(matches!(report.verdict, Verdict::Unknown { exhausted: Some(_) }));
    println!("  rejected in {elapsed:?}: {report}");
    println!("\n  …and the rejection crosses a process boundary as JSON:");
    println!("  {}", report.to_json());
}
