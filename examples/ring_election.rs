//! PODC protocol zoo: unidirectional ring leader election (Chang–Roberts
//! style, maximum id wins) — its interval-logic specification checked over
//! every interleaving, the uniqueness theorem through the `Explore`,
//! `Bounded` and `Decide` backends, and a seeded broken variant whose
//! violation every backend reports identically.
//!
//! Run with `cargo run --example ring_election`.

use ilogic::core::dsl::*;
use ilogic::core::spec::close_free_variables;
use ilogic::systems::explore::{collect_runs, explore, explore_backend, ExploreLimits};
use ilogic::systems::ring::{
    leader_uniqueness_theorem, leadership_census, ring_election_spec, RingModel,
};
use ilogic::{CheckRequest, Session};

fn main() {
    let session = Session::new();
    let ids = vec![2u64, 1, 3];
    let correct = RingModel::correct(ids.clone());
    let broken = RingModel::broken(ids.clone());
    let limits = ExploreLimits::default();

    println!("== exhaustive state exploration, {} nodes with ids {ids:?} ==", ids.len());
    let report = explore(&correct, limits, RingModel::at_most_one_leader);
    println!(
        "correct ring: at-most-one-leader {} over {} states",
        if report.verified() { "verified" } else { "VIOLATED" },
        report.states
    );
    let census = leadership_census(&correct, 512);
    println!("leadership census over complete runs: {census:?} (only the maximum id wins)");
    let report = explore(&broken, limits, RingModel::at_most_one_leader);
    println!(
        "broken ring (claims on any token): {}",
        match report.violation {
            Some(violation) => format!("violated after {:?}", violation.actions),
            None => "unexpectedly verified".to_string(),
        }
    );

    println!("\n== the specification over every collected run ==");
    let spec = ring_election_spec();
    for (name, model) in [("correct", &correct), ("broken", &broken)] {
        let runs = collect_runs(model, limits, 96);
        let conforming = runs.iter().filter(|run| session.check_spec(&spec, run).passed()).count();
        println!("{name}: {conforming}/{} runs conform to `{}`", runs.len(), spec.name());
    }

    println!("\n== the uniqueness theorem through every applicable backend ==");
    let theorem = close_free_variables(&leader_uniqueness_theorem());
    for (name, model) in [("correct", &correct), ("broken", &broken)] {
        let explore_report = session.check(
            CheckRequest::new(theorem.clone()).with_backend(explore_backend(model, limits, 96)),
        );
        println!(
            "{name}: explore says {} (failing run {:?})",
            explore_report.verdict, explore_report.failing_index
        );
    }
    // The propositional rendering of the violation — two positions both
    // leading — is refuted identically by the bounded sweep and the decision
    // procedure: same counterexample, same index.
    let unique = prop("lead_a").and(prop("lead_b")).not().always();
    let bounded = session.check(CheckRequest::new(unique.clone()).bounded(["lead_a", "lead_b"], 4));
    let decide = session.check(CheckRequest::new(unique).decide());
    println!(
        "propositional rendering: bounded {} / decide {} (identical: {})",
        bounded.verdict,
        decide.verdict,
        bounded.verdict.counterexample() == decide.verdict.counterexample()
            && bounded.failing_index == decide.failing_index
    );
}
