//! PODC protocol zoo: a master/slave sensor bus with timeouts and retries —
//! one master polling a set of slaves, re-polling on timeout up to a retry
//! budget, then declaring the slave dead.  The interval-logic discipline
//! (exclusive bus, every transaction resolved, verdicts stable and
//! consistent) is checked over every interleaving; a broken master that
//! opens overlapping polls is caught by `Explore` and the violation refuted
//! identically by `Bounded` and `Decide`.
//!
//! Run with `cargo run --example sensor_bus`.

use ilogic::core::dsl::*;
use ilogic::core::spec::close_free_variables;
use ilogic::systems::explore::{collect_runs, explore, explore_backend, ExploreLimits};
use ilogic::systems::sensorbus::{bus_exclusivity_theorem, sensor_bus_spec, SensorBusModel};
use ilogic::{CheckRequest, Session};

fn main() {
    let session = Session::new();
    let correct = SensorBusModel::correct(2, 1);
    let broken = SensorBusModel::broken(2, 1);
    let limits = ExploreLimits::default();

    println!("== exhaustive state exploration, 2 slaves, 1 retry ==");
    let report = explore(&correct, limits, SensorBusModel::bus_exclusive);
    println!(
        "correct master: bus exclusivity {} over {} states",
        if report.verified() { "verified" } else { "VIOLATED" },
        report.states
    );
    let report = explore(&broken, limits, SensorBusModel::bus_exclusive);
    println!(
        "broken master (overlapping polls): {}",
        match report.violation {
            Some(violation) => format!("violated after {:?}", violation.actions),
            None => "unexpectedly verified".to_string(),
        }
    );

    println!("\n== the bus discipline over every collected run ==");
    let spec = sensor_bus_spec();
    for (name, model) in [("correct", &correct), ("broken", &broken)] {
        let runs = collect_runs(model, limits, 96);
        let conforming = runs.iter().filter(|run| session.check_spec(&spec, run).passed()).count();
        println!("{name}: {conforming}/{} runs conform to `{}`", runs.len(), spec.name());
    }

    println!("\n== the exclusivity theorem through every applicable backend ==");
    let theorem = close_free_variables(&bus_exclusivity_theorem());
    for (name, model) in [("correct", &correct), ("broken", &broken)] {
        let explore_report = session.check(
            CheckRequest::new(theorem.clone()).with_backend(explore_backend(model, limits, 96)),
        );
        println!(
            "{name}: explore says {} (failing run {:?})",
            explore_report.verdict, explore_report.failing_index
        );
    }
    // The propositional rendering — two slaves polled at once — refuted
    // identically by the bounded sweep and the decision procedure.
    let exclusive = prop("busy_a").and(prop("busy_b")).not().always();
    let bounded =
        session.check(CheckRequest::new(exclusive.clone()).bounded(["busy_a", "busy_b"], 4));
    let decide = session.check(CheckRequest::new(exclusive).decide());
    println!(
        "propositional rendering: bounded {} / decide {} (identical: {})",
        bounded.verdict,
        decide.verdict,
        bounded.verdict.counterexample() == decide.verdict.counterexample()
            && bounded.failing_index == decide.failing_index
    );
}
