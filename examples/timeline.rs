//! Render the report's pictorial notation (Chapter 2 figures and the
//! Chapter 6 request/acknowledge signalling picture) as ASCII timelines.
//!
//! Run with `cargo run --example timeline`.

use ilogic::core::diagram::Diagram;
use ilogic::core::dsl::*;
use ilogic::core::prelude::*;
use ilogic::{CheckRequest, Session};

fn main() {
    // -------------------------------------------------------------------
    // Formula (3) of Chapter 2: [ (A => B) => C ] <> D
    // -------------------------------------------------------------------
    let trace = Trace::finite(vec![
        State::new(),
        State::new().with("A"),
        State::new().with("A").with("B"),
        State::new().with("A").with("B").with("D"),
        State::new().with("A").with("B").with("C"),
    ]);
    let inner = fwd(event(prop("A")), event(prop("B")));
    let formula = within(fwd(inner.clone(), event(prop("C"))), eventually(prop("D")));
    println!("Formula (3): [ (A => B) => C ] <> D\n");
    println!(
        "{}",
        Diagram::new(&trace)
            .prop_row("A")
            .prop_row("B")
            .prop_row("C")
            .prop_row("D")
            .interval_term("A => B", &inner)
            .formula("[ (A=>B) => C ] <> D", &formula)
            .render()
    );

    // -------------------------------------------------------------------
    // Formula (7) of Chapter 2: [ (A <= B) <= C ] <> D — backward search.
    // -------------------------------------------------------------------
    let backward = within(
        fwd(bwd(event(prop("A")), event(prop("B"))), event(prop("C"))),
        eventually(prop("D")),
    );
    println!("Formula (7) uses backward context; verdict on the same trace:");
    println!("{}\n", Diagram::new(&trace).formula("[ (A<=B) => C ] <> D", &backward).render());

    // -------------------------------------------------------------------
    // The Chapter 6 request/acknowledge picture: R, A raised and lowered.
    // -------------------------------------------------------------------
    let mut builder = TraceBuilder::new();
    builder.commit(); // both signals low
    builder.assert_prop(ilogic::core::state::Prop::plain("R")).commit();
    builder.assert_prop(ilogic::core::state::Prop::plain("A")).commit();
    builder.retract_prop(&ilogic::core::state::Prop::plain("R")).commit();
    builder.retract_prop(&ilogic::core::state::Prop::plain("A")).commit();
    let handshake = builder.finish();

    // Axiom A1 of Figure 6-2: [ R => *A ] ¬A ∧ ◇R
    let a1 = within(
        fwd(event(prop("R")), must(event(prop("A")))),
        not(prop("A")).and(eventually(prop("R"))),
    );
    let verdict = Session::new().check(CheckRequest::new(a1.clone()).on_trace(&handshake)).verdict;
    println!("Figure 6-2, axiom A1 over one four-phase handshake ({verdict}):");
    println!(
        "{}",
        Diagram::new(&handshake)
            .prop_row("R")
            .prop_row("A")
            .interval_term("R => *A", &fwd(event(prop("R")), must(event(prop("A")))))
            .formula("A1", &a1)
            .render()
    );
}
