//! Chapter 5: check the queue specifications against simulated queues through
//! the unified `Session` API.
//!
//! Run with `cargo run --example queue_spec`.

use ilogic::systems::queue::{simulate, QueueKind, QueueWorkload};
use ilogic::systems::specs;
use ilogic::Session;

fn main() {
    let session = Session::new();
    let workload = QueueWorkload { items: 5, retries: 3, seed: 41, phased: false };

    println!("== reliable queue against the FIFO axiom ==");
    let reliable = simulate(QueueKind::Reliable, workload);
    print!("{}", session.check_spec(&specs::reliable_queue_spec(), &reliable));

    println!("\n== unreliable queue (30% loss) against Figure 5-1 ==");
    let unreliable = simulate(QueueKind::Unreliable { loss: 0.3 }, workload);
    print!("{}", session.check_spec(&specs::unreliable_queue_spec(), &unreliable));

    println!("\n== stack against the stack axiom (phased workload) ==");
    let stack = simulate(QueueKind::Stack, QueueWorkload { phased: true, ..workload });
    print!("{}", session.check_spec(&specs::stack_spec(), &stack));

    println!("\n== a faulty, reordering queue is rejected by the FIFO axiom ==");
    let faulty = simulate(QueueKind::FaultyReordering, QueueWorkload { seed: 3, ..workload });
    let report = session.check_spec(&specs::reliable_queue_spec(), &faulty);
    print!("{report}");
    if !report.passed() {
        println!("(as expected, the specification catches the reordering)");
    }
}
