//! Service-style batched checking: N mixed-backend jobs — tableau decisions,
//! bounded validity sweeps, explorer conformance, trace conformance — queued
//! on one `Session`, sharing one `ResourceBudget` with a wall-clock deadline,
//! and multiplexed across the worker pool by `check_many`.
//!
//! Every report is bit-identical to a sequential loop of `check` calls (only
//! wall-clock timings, and any deadline cuts, vary), and each one serializes
//! to stable JSON for crossing a process boundary.
//!
//! Run with `cargo run --release --example service_batch`.

use std::time::Duration;

use ilogic::core::dsl::*;
use ilogic::core::spec::close_free_variables;
use ilogic::core::valid;
use ilogic::systems::explore::{explore_backend, ExploreLimits, MutexModel};
use ilogic::systems::specs;
use ilogic::{CheckReport, CheckRequest, Parallelism, ResourceBudget, Session};

fn main() {
    // One budget for the whole batch: the default structural caps plus a
    // shared 10-second deadline — jobs still running when it passes answer
    // `Unknown { exhausted: deadline }` instead of holding the queue hostage.
    let budget = ResourceBudget::default().with_timeout(Duration::from_secs(10));

    let mut requests: Vec<(String, CheckRequest)> = Vec::new();

    // Tableau decisions: every catalogue schema through the `Decide` backend.
    for (name, formula) in valid::catalogue() {
        requests.push((
            format!("decide {name}"),
            CheckRequest::new(formula).decide().with_budget(budget.clone()),
        ));
    }

    // Bounded validity evidence for two catalogue schemas at a deeper bound.
    for (name, formula) in [("V9", valid::v9(prop("P"))), ("V1", valid::catalogue()[0].1.clone())] {
        requests.push((
            format!("bounded {name}"),
            CheckRequest::new(formula).bounded(["P", "Q"], 3).with_budget(budget.clone()),
        ));
    }

    // Explorer conformance: the mutual-exclusion theorem over every
    // interleaving of a correct and a broken mutex model.
    let theorem = close_free_variables(&specs::mutual_exclusion_theorem());
    for (name, model) in
        [("mutex ok", MutexModel::correct(2, 1)), ("mutex broken", MutexModel::broken(2, 1))]
    {
        requests.push((
            format!("explore {name}"),
            CheckRequest::new(theorem.clone())
                .with_backend(explore_backend(&model, ExploreLimits::default(), 128))
                .with_budget(budget.clone()),
        ));
    }

    // Trace conformance of a hand-written run.
    let trace = ilogic::core::trace::Trace::finite(vec![
        ilogic::core::state::State::new(),
        ilogic::core::state::State::new().with("A"),
        ilogic::core::state::State::new().with("B"),
    ]);
    requests.push((
        "trace occurs(A)".to_string(),
        CheckRequest::new(occurs(event(prop("A")))).on_trace(&trace).with_budget(budget.clone()),
    ));

    // Submit the whole batch across 4 workers.
    let session = Session::new().with_parallelism(Parallelism::Fixed(4));
    let labels: Vec<String> = requests.iter().map(|(label, _)| label.clone()).collect();
    let started = std::time::Instant::now();
    let reports = session.check_many(requests.into_iter().map(|(_, r)| r).collect());
    let elapsed = started.elapsed();

    println!("{} jobs in {elapsed:.2?} (4 workers, shared 10s deadline)\n", reports.len());
    println!("{:<22} {:<10} verdict", "job", "backend");
    for (label, report) in labels.iter().zip(&reports) {
        let mut verdict = report.verdict.to_string();
        if verdict.chars().count() > 72 {
            verdict = verdict.chars().take(72).chain(['…']).collect();
        }
        println!("{label:<22} {:<10} {verdict}", report.backend);
    }

    let passed = reports.iter().filter(|r| r.verdict.passed()).count();
    let refuted = reports.iter().filter(|r| r.verdict.counterexample().is_some()).count();
    let unknown = reports.iter().filter(|r| r.verdict.is_unknown()).count();
    println!("\npassed {passed}, refuted {refuted}, unknown {unknown}");

    // Reports serialize losslessly for the wire; prove the round trip here.
    let json = reports[0].to_json();
    let back = CheckReport::from_json(&json).expect("a rendered report parses back");
    assert_eq!(back, reports[0], "JSON round-trip must be lossless");
    println!("\nfirst report as JSON:\n{json}");
}
