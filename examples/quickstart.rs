//! Quickstart: build interval formulas, evaluate them over traces, parse the
//! concrete syntax, and call the decision procedures.
//!
//! Run with `cargo run --example quickstart`.

use ilogic::core::dsl::*;
use ilogic::core::parser::parse_formula;
use ilogic::core::prelude::*;
use ilogic::temporal::prelude::*;

fn main() {
    // -----------------------------------------------------------------------
    // 1. An interval formula: [ A => *B ] <> D
    //    "Between the next A event and the B event that must follow it,
    //     D occurs at some point."
    // -----------------------------------------------------------------------
    let formula = eventually(prop("D")).within(fwd(event(prop("A")), must(event(prop("B")))));
    println!("formula: {formula}");

    let good = Trace::finite(vec![
        State::new(),
        State::new().with("A"),
        State::new().with("A").with("D"),
        State::new().with("A").with("B"),
    ]);
    let bad = Trace::finite(vec![State::new(), State::new().with("A"), State::new().with("A")]);
    println!("  holds on the good trace: {}", Evaluator::new(&good).check(&formula));
    println!("  holds on the bad trace:  {}", Evaluator::new(&bad).check(&formula));

    // -----------------------------------------------------------------------
    // 2. The same formula from its concrete syntax.
    // -----------------------------------------------------------------------
    let parsed = parse_formula("[ A => *B ] <> D").expect("well-formed");
    assert_eq!(parsed, formula);
    println!("  parsed form matches the DSL form");

    // -----------------------------------------------------------------------
    // 3. A valid formula of Chapter 4, confirmed by exhaustive bounded search.
    // -----------------------------------------------------------------------
    let v9 = ilogic::core::valid::v9(prop("P"));
    let checker = BoundedChecker::new(["P"], 4);
    println!("V9 `[P => begin ~P] []P` has a counterexample up to length 4: {}",
        checker.counterexample(&v9).is_some());

    // -----------------------------------------------------------------------
    // 4. The Appendix B combined decision procedure:
    //    "Henceforth a >= 1 implies eventually a > 0".
    // -----------------------------------------------------------------------
    let a_ge_1 = Ltl::cmp(Term::var("a"), ilogic::temporal::syntax::CmpOp::Ge, Term::int(1));
    let a_gt_0 = Ltl::cmp(Term::var("a"), ilogic::temporal::syntax::CmpOp::Gt, Term::int(0));
    let claim = a_ge_1.always().implies(a_gt_0.eventually());
    let linear = LinearTheory::new();
    println!(
        "[](a >= 1) -> <>(a > 0) valid over the integers: {}",
        AlgorithmA::new(&linear).valid(&claim)
    );
    println!(
        "same formula valid in pure temporal logic:       {}",
        valid_pure(&claim)
    );
}
