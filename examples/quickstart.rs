//! Quickstart: build interval formulas and run every kind of check through the
//! unified `Session` API — trace conformance, then a *batch* of bounded
//! validity searches and tableau decisions submitted together through
//! `Session::check_many`.
//!
//! Run with `cargo run --example quickstart`.

use ilogic::core::dsl::*;
use ilogic::core::parser::parse_formula;
use ilogic::core::prelude::*;
use ilogic::temporal::prelude::*;
use ilogic::{CheckRequest, Session, Verdict};

fn main() {
    let session = Session::new();

    // -----------------------------------------------------------------------
    // 1. An interval formula: [ A => *B ] <> D
    //    "Between the next A event and the B event that must follow it,
    //     D occurs at some point."
    // -----------------------------------------------------------------------
    let formula = eventually(prop("D")).within(fwd(event(prop("A")), must(event(prop("B")))));
    println!("formula: {formula}");

    let good = Trace::finite(vec![
        State::new(),
        State::new().with("A"),
        State::new().with("A").with("D"),
        State::new().with("A").with("B"),
    ]);
    let bad = Trace::finite(vec![State::new(), State::new().with("A"), State::new().with("A")]);
    let on_good = session.check(CheckRequest::new(formula.clone()).on_trace(&good));
    let on_bad = session.check(CheckRequest::new(formula.clone()).on_trace(&bad));
    println!("  on the good trace: {}", on_good.verdict);
    println!("  on the bad trace:  {}", on_bad.verdict);

    // -----------------------------------------------------------------------
    // 2. The same formula from its concrete syntax.
    // -----------------------------------------------------------------------
    let parsed = parse_formula("[ A => *B ] <> D").expect("well-formed");
    assert_eq!(parsed, formula);
    println!("  parsed form matches the DSL form");

    // -----------------------------------------------------------------------
    // 3. A batch: a Chapter 4 valid formula confirmed by exhaustive bounded
    //    search, a propositional theorem settled exactly by the tableau, and
    //    a refutable formula concretized into a countermodel — submitted
    //    together through `check_many`, which multiplexes the jobs across the
    //    worker pool while keeping every report identical to a sequential
    //    loop of `check` calls.
    // -----------------------------------------------------------------------
    let v9 = ilogic::core::valid::v9(prop("P"));
    let theorem = always(prop("P")).implies(eventually(prop("P")));
    let reports = session.check_many(vec![
        CheckRequest::new(v9).bounded(["P"], 4),
        CheckRequest::new(theorem).decide(),
        CheckRequest::new(eventually(prop("P"))).decide(),
    ]);
    println!(
        "V9 `[P => begin ~P] []P` over every computation of length <= 4: {} ({})",
        reports[0].verdict, reports[0].stats
    );
    println!("[]P -> <>P decided by the tableau: {}", reports[1].verdict);
    match &reports[2].verdict {
        Verdict::Counterexample(cex) => println!("<>P is refuted by: {cex}"),
        other => println!("<>P: {other}"),
    }
    // Any report can cross a process boundary as stable JSON.
    println!("as JSON: {}", reports[1].to_json());

    // -----------------------------------------------------------------------
    // 4. The low-level layer stays available: the Appendix B combined decision
    //    procedure with a specialized linear-arithmetic theory.
    // -----------------------------------------------------------------------
    let a_ge_1 = Ltl::cmp(Term::var("a"), ilogic::temporal::syntax::CmpOp::Ge, Term::int(1));
    let a_gt_0 = Ltl::cmp(Term::var("a"), ilogic::temporal::syntax::CmpOp::Gt, Term::int(0));
    let claim = a_ge_1.always().implies(a_gt_0.eventually());
    let linear = LinearTheory::new();
    println!(
        "[](a >= 1) -> <>(a > 0) valid over the integers: {}",
        AlgorithmA::new(&linear).valid(&claim)
    );
}
