//! Quickstart: build interval formulas and run every kind of check through the
//! unified `Session` API — trace conformance, bounded validity search, and the
//! tableau decision procedure.
//!
//! Run with `cargo run --example quickstart`.

use ilogic::core::dsl::*;
use ilogic::core::parser::parse_formula;
use ilogic::core::prelude::*;
use ilogic::temporal::prelude::*;
use ilogic::{CheckRequest, Session, Verdict};

fn main() {
    let mut session = Session::new();

    // -----------------------------------------------------------------------
    // 1. An interval formula: [ A => *B ] <> D
    //    "Between the next A event and the B event that must follow it,
    //     D occurs at some point."
    // -----------------------------------------------------------------------
    let formula = eventually(prop("D")).within(fwd(event(prop("A")), must(event(prop("B")))));
    println!("formula: {formula}");

    let good = Trace::finite(vec![
        State::new(),
        State::new().with("A"),
        State::new().with("A").with("D"),
        State::new().with("A").with("B"),
    ]);
    let bad = Trace::finite(vec![State::new(), State::new().with("A"), State::new().with("A")]);
    let on_good = session.check(CheckRequest::new(formula.clone()).on_trace(&good));
    let on_bad = session.check(CheckRequest::new(formula.clone()).on_trace(&bad));
    println!("  on the good trace: {}", on_good.verdict);
    println!("  on the bad trace:  {}", on_bad.verdict);

    // -----------------------------------------------------------------------
    // 2. The same formula from its concrete syntax.
    // -----------------------------------------------------------------------
    let parsed = parse_formula("[ A => *B ] <> D").expect("well-formed");
    assert_eq!(parsed, formula);
    println!("  parsed form matches the DSL form");

    // -----------------------------------------------------------------------
    // 3. A valid formula of Chapter 4, confirmed by exhaustive bounded search
    //    (the same request shape refutes non-theorems with a counterexample).
    // -----------------------------------------------------------------------
    let v9 = ilogic::core::valid::v9(prop("P"));
    let report = session.check(CheckRequest::new(v9).bounded(["P"], 4));
    println!(
        "V9 `[P => begin ~P] []P` over every computation of length <= 4: {} \
         ({} computations in {:?}, {} memo hits)",
        report.verdict, report.stats.traces_checked, report.stats.duration, report.stats.memo.hits
    );

    // -----------------------------------------------------------------------
    // 4. A propositional theorem settled exactly by the tableau (`decide`),
    //    and a refutable formula concretized into a countermodel.
    // -----------------------------------------------------------------------
    let theorem = always(prop("P")).implies(eventually(prop("P")));
    println!(
        "[]P -> <>P decided by the tableau: {}",
        session.check(CheckRequest::new(theorem).decide()).verdict
    );
    let refuted = session.check(CheckRequest::new(eventually(prop("P"))).decide());
    match refuted.verdict {
        Verdict::Counterexample(cex) => println!("<>P is refuted by: {cex}"),
        other => println!("<>P: {other}"),
    }

    // -----------------------------------------------------------------------
    // 5. The low-level layer stays available: the Appendix B combined decision
    //    procedure with a specialized linear-arithmetic theory.
    // -----------------------------------------------------------------------
    let a_ge_1 = Ltl::cmp(Term::var("a"), ilogic::temporal::syntax::CmpOp::Ge, Term::int(1));
    let a_gt_0 = Ltl::cmp(Term::var("a"), ilogic::temporal::syntax::CmpOp::Gt, Term::int(0));
    let claim = a_ge_1.always().implies(a_gt_0.eventually());
    let linear = LinearTheory::new();
    println!(
        "[](a >= 1) -> <>(a > 0) valid over the integers: {}",
        AlgorithmA::new(&linear).valid(&claim)
    );
}
