//! Chapter 6: the self-timed request/acknowledge protocol and the arbiter,
//! checked through the unified `Session` API.
//!
//! Run with `cargo run --example arbiter`.

use ilogic::systems::selftimed::{
    simulate_arbiter, simulate_hasty_requester, simulate_premature_arbiter, simulate_request_ack,
    ArbiterWorkload, ChannelWorkload,
};
use ilogic::systems::specs;
use ilogic::Session;

fn main() {
    let session = Session::new();

    println!("== request/acknowledge channel against Figure 6-2 ==");
    let channel = simulate_request_ack(ChannelWorkload { cycles: 5, max_delay: 2, seed: 8 });
    print!("{}", session.check_spec(&specs::request_ack_spec("R", "A"), &channel));

    println!("\n== a hasty requester (withdraws before the ack) is rejected ==");
    let hasty = simulate_hasty_requester(ChannelWorkload::default());
    print!("{}", session.check_spec(&specs::request_ack_spec("R", "A"), &hasty));

    println!("\n== arbiter against Figure 6-4 ==");
    let arbiter = simulate_arbiter(ArbiterWorkload { rounds: 2, max_delay: 1, seed: 21 });
    print!("{}", session.check_spec(&specs::arbiter_spec(), &arbiter));

    println!("\n== the arbiter's signal pairs also obey the request/ack protocol ==");
    for (r, a) in [("UR1", "UA1"), ("UR2", "UA2"), ("TR1", "TA1"), ("RMR", "RMA")] {
        let report = session.check_spec(&specs::request_ack_spec(r, a), &arbiter);
        println!("  {r}/{a}: {}", if report.passed() { "conforms" } else { "VIOLATED" });
    }

    println!("\n== an arbiter that acknowledges the user too early is rejected ==");
    let premature = simulate_premature_arbiter();
    let report = session.check_spec(&specs::arbiter_spec(), &premature);
    print!("{report}");
}
