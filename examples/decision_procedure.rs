//! Appendix B: regenerate the §6 measurement table (R3, R4, R5) with this
//! implementation of the tableau construction and Algorithm B, and demonstrate
//! the combined procedures on theory examples.
//!
//! Run with `cargo run --release --example decision_procedure`.

use std::time::Instant;

use ilogic::temporal::algorithm_b::{condition_of_graph, AlgorithmB, Decision};
use ilogic::temporal::patterns;
use ilogic::temporal::prelude::*;
use ilogic::{CheckRequest, Session, Verdict};

fn main() {
    // The tableau is also the engine behind `Session`'s `decide` backend:
    // interval-logic formulas in the translatable fragment route through the
    // same machinery via the unified API.
    {
        use ilogic::core::dsl::*;
        let mut session = Session::new();
        let response = always(prop("P").implies(eventually(prop("Q"))));
        let premise = always(eventually(prop("Q")));
        let theorem = premise.implies(response);
        let report = session.check(CheckRequest::new(theorem).decide());
        println!("Session decide: [](<>Q) -> [](P -> <>Q) is {}", report.verdict);
        assert_eq!(report.verdict, Verdict::Holds);
    }

    println!("\n== Appendix B §6 table: graph construction and iteration ==");
    println!(
        "{:<4} {:>14} {:>14} {:>7} {:>7} {:>7}",
        "", "construction", "iteration", "nodes", "edges", "valid"
    );
    println!(
        "paper (Interlisp, 1983):  R3 67s/14s 13n/108e   R4 105s/22s 16n/166e   R5 13.8s/5s 8n/34e"
    );
    for (name, formula) in patterns::appendix_b_table() {
        let negated = formula.clone().not();
        let t0 = Instant::now();
        let graph = TableauGraph::build(&negated);
        let construction = t0.elapsed();
        let nodes = graph.node_count();
        let edges = graph.edge_count();
        let t1 = Instant::now();
        let condition = condition_of_graph(graph);
        let iteration = t1.elapsed();
        println!(
            "{:<4} {:>12.3?} {:>12.3?} {:>7} {:>7} {:>7}",
            name,
            construction,
            iteration,
            nodes,
            edges,
            condition.valid_in_pure_tl()
        );
    }

    println!("\n== combined decision procedures with a specialized theory ==");
    let linear = LinearTheory::new();
    let a_ge_1 = Ltl::cmp(Term::var("a"), CmpOp::Ge, Term::int(1));
    let a_gt_0 = Ltl::cmp(Term::var("a"), CmpOp::Gt, Term::int(0));
    let motivating = a_ge_1.always().implies(a_gt_0.eventually());
    println!("[](a>=1) -> <>(a>0)   Algorithm A: {}", AlgorithmA::new(&linear).valid(&motivating));

    let gt = Ltl::cmp(Term::var("x"), CmpOp::Gt, Term::int(0));
    let lt = Ltl::cmp(Term::var("x"), CmpOp::Lt, Term::int(1));
    let disjunction = gt.always().or(lt.always());
    let state = AlgorithmB::new(&linear, VarSpec::all_state());
    let extra = AlgorithmB::new(&linear, VarSpec::with_extralogical(["x"]));
    println!(
        "[](x>0) | [](x<1)     Algorithm B, x a state variable:        {:?}",
        state.decide(&disjunction)
    );
    println!(
        "[](x>0) | [](x<1)     Algorithm B, x an extralogical variable: {:?}",
        extra.decide(&disjunction)
    );
    assert_eq!(state.decide(&disjunction), Decision::NotValid);
    assert_eq!(extra.decide(&disjunction), Decision::Valid);

    println!("\n== Nelson-Oppen style combination of equality and linear arithmetic ==");
    let combined = CombinedTheory::new();
    let premise = Ltl::cmp(Term::var("a"), CmpOp::Eq, Term::var("b"))
        .and(Ltl::cmp(Term::var("b"), CmpOp::Ge, Term::int(1)))
        .always();
    let claim =
        premise.clone().implies(Ltl::cmp(Term::var("a"), CmpOp::Ge, Term::int(1)).eventually());
    let too_strong =
        premise.implies(Ltl::cmp(Term::var("a"), CmpOp::Ge, Term::int(2)).eventually());
    println!(
        "[](a=b & b>=1) -> <>(a>=1)   Algorithm A over the combination: {}",
        AlgorithmA::new(&combined).valid(&claim)
    );
    println!(
        "[](a=b & b>=1) -> <>(a>=2)   Algorithm A over the combination: {}",
        AlgorithmA::new(&combined).valid(&too_strong)
    );
}
