//! Appendix B: regenerate the §6 measurement table (R3, R4, R5) with this
//! implementation of the tableau construction and Algorithm B, and demonstrate
//! the combined procedures on theory examples.
//!
//! Run with `cargo run --release --example decision_procedure`.

use std::time::Instant;

use ilogic::temporal::algorithm_b::{condition_of_graph, AlgorithmB, Decision};
use ilogic::temporal::patterns;
use ilogic::temporal::prelude::*;
use ilogic::{CheckRequest, Exhaustion, ResourceBudget, Session, Verdict};

fn main() {
    // The tableau is also the engine behind `Session`'s `decide` backend:
    // interval-logic formulas in the translatable fragment route through the
    // same machinery via the unified API — here as one submitted batch, with
    // a single `ResourceBudget` bounding both jobs.
    {
        use ilogic::core::dsl::*;
        let session = Session::new();
        let response = always(prop("P").implies(eventually(prop("Q"))));
        let premise = always(eventually(prop("Q")));
        let theorem = premise.implies(response);
        let budget = ResourceBudget::default();
        let reports = session.check_many(vec![
            CheckRequest::new(theorem).decide().with_budget(budget.clone()),
            CheckRequest::new(eventually(prop("Q"))).decide().with_budget(budget),
        ]);
        println!("Session decide: [](<>Q) -> [](P -> <>Q) is {}", reports[0].verdict);
        assert_eq!(reports[0].verdict, Verdict::Holds);
        println!("Session decide: <>Q is {}", reports[1].verdict);
        assert!(reports[1].verdict.counterexample().is_some());
    }

    // The measured `[ => Q ] []P` condition-fixpoint blowup, post
    // condition-store rewrite: the *decision* settles in milliseconds (the
    // evaluated Boolean fixpoint never materializes a condition DNF), while
    // the *explicit condition artifact* — whose minimal DNF is genuinely
    // astronomic — still answers with a named exhaustion instead of hanging
    // for hours.
    {
        use ilogic::core::dsl::*;
        use ilogic::core::ltl_translate::to_ltl;
        let blowup = to_ltl(&always(prop("P")).within(fwd_to(event(prop("Q"))))).unwrap();
        let theory = PropositionalTheory::new();
        let alg = AlgorithmB::new(&theory, VarSpec::all_state());
        let decision = alg.decide_budgeted(&blowup, &ResourceBudget::default());
        println!("[ => Q ] []P decision under the default budget: {decision:?}");
        assert_eq!(decision, Ok(Decision::NotValid));
        let artifact = alg.condition_budgeted(&blowup, &ResourceBudget::default());
        println!(
            "[ => Q ] []P explicit condition under the default budget: Err({})",
            artifact.as_ref().expect_err("the artifact must trip")
        );
        assert!(matches!(artifact, Err(Exhaustion::Implicants)));
    }

    println!("\n== Appendix B §6 table: graph construction and iteration ==");
    println!(
        "{:<4} {:>14} {:>14} {:>7} {:>7} {:>7}",
        "", "construction", "iteration", "nodes", "edges", "valid"
    );
    println!(
        "paper (Interlisp, 1983):  R3 67s/14s 13n/108e   R4 105s/22s 16n/166e   R5 13.8s/5s 8n/34e"
    );
    for (name, formula) in patterns::appendix_b_table() {
        let negated = formula.clone().not();
        let t0 = Instant::now();
        let graph = TableauGraph::build(&negated);
        let construction = t0.elapsed();
        let nodes = graph.node_count();
        let edges = graph.edge_count();
        let t1 = Instant::now();
        let condition = condition_of_graph(graph);
        let iteration = t1.elapsed();
        println!(
            "{:<4} {:>12.3?} {:>12.3?} {:>7} {:>7} {:>7}",
            name,
            construction,
            iteration,
            nodes,
            edges,
            condition.valid_in_pure_tl()
        );
    }

    println!("\n== combined decision procedures with a specialized theory ==");
    let linear = LinearTheory::new();
    let a_ge_1 = Ltl::cmp(Term::var("a"), CmpOp::Ge, Term::int(1));
    let a_gt_0 = Ltl::cmp(Term::var("a"), CmpOp::Gt, Term::int(0));
    let motivating = a_ge_1.always().implies(a_gt_0.eventually());
    println!("[](a>=1) -> <>(a>0)   Algorithm A: {}", AlgorithmA::new(&linear).valid(&motivating));

    let gt = Ltl::cmp(Term::var("x"), CmpOp::Gt, Term::int(0));
    let lt = Ltl::cmp(Term::var("x"), CmpOp::Lt, Term::int(1));
    let disjunction = gt.always().or(lt.always());
    let state = AlgorithmB::new(&linear, VarSpec::all_state());
    let extra = AlgorithmB::new(&linear, VarSpec::with_extralogical(["x"]));
    println!(
        "[](x>0) | [](x<1)     Algorithm B, x a state variable:        {:?}",
        state.decide(&disjunction)
    );
    println!(
        "[](x>0) | [](x<1)     Algorithm B, x an extralogical variable: {:?}",
        extra.decide(&disjunction)
    );
    assert_eq!(state.decide(&disjunction), Decision::NotValid);
    assert_eq!(extra.decide(&disjunction), Decision::Valid);

    println!("\n== Nelson-Oppen style combination of equality and linear arithmetic ==");
    let combined = CombinedTheory::new();
    let premise = Ltl::cmp(Term::var("a"), CmpOp::Eq, Term::var("b"))
        .and(Ltl::cmp(Term::var("b"), CmpOp::Ge, Term::int(1)))
        .always();
    let claim =
        premise.clone().implies(Ltl::cmp(Term::var("a"), CmpOp::Ge, Term::int(1)).eventually());
    let too_strong =
        premise.implies(Ltl::cmp(Term::var("a"), CmpOp::Ge, Term::int(2)).eventually());
    println!(
        "[](a=b & b>=1) -> <>(a>=1)   Algorithm A over the combination: {}",
        AlgorithmA::new(&combined).valid(&claim)
    );
    println!(
        "[](a=b & b>=1) -> <>(a>=2)   Algorithm A over the combination: {}",
        AlgorithmA::new(&combined).valid(&too_strong)
    );
}
