//! Appendix C §4: build the graph of a low-level-language expression, run the
//! iteration method, and decide satisfiability — including the report's §4.3
//! example `iter*(P·T*, Q)` and the §3 synchronization constraint.
//!
//! Run with `cargo run --example lowlevel_graphs`.

use ilogic::lowlevel::decide::{accepted_interps, prune, satisfiable_graph, GraphSat};
use ilogic::lowlevel::graph::build_graph;
use ilogic::lowlevel::syntax::LowExpr;

fn report(name: &str, expr: &LowExpr) {
    println!("== {name}: {expr}");
    let graph = build_graph(expr).expect("graph construction within default limits");
    let pruned = prune(&graph);
    println!(
        "   graph: {} nodes / {} edges, after iteration method: {} nodes / {} edges ({} rounds)",
        pruned.stats.nodes_before,
        pruned.stats.edges_before,
        pruned.stats.nodes_after,
        pruned.stats.edges_after,
        pruned.stats.rounds,
    );
    match satisfiable_graph(&graph) {
        GraphSat::FiniteModel(m) => println!("   satisfiable with finite model: {m}"),
        GraphSat::InfiniteModel(prefix) => {
            println!("   satisfiable with an infinite model; prefix: {prefix}");
        }
        GraphSat::Unsatisfiable => println!("   unsatisfiable"),
    }
}

fn main() {
    // -------------------------------------------------------------------
    // 1. The §4.3 example: iter*(P·T*, Q) ≡ ∨ᵢ Pⁱ;Q.
    // -------------------------------------------------------------------
    let section_4_3 = LowExpr::pos("P").concat(LowExpr::TStar).iter_star(LowExpr::pos("Q"));
    report("section 4.3 example", &section_4_3);
    let graph = build_graph(&section_4_3).expect("graph construction");
    println!("   pruned graph:\n{}", prune(&graph).graph);
    println!("   accepted constraints up to length 4:");
    for model in accepted_interps(&graph, 4, 32) {
        println!("     {model}");
    }

    // -------------------------------------------------------------------
    // 2. An eventuality that can never be discharged: iter*(P·T*, F).
    // -------------------------------------------------------------------
    report(
        "undischargeable eventuality",
        &LowExpr::pos("P").concat(LowExpr::TStar).iter_star(LowExpr::F),
    );

    // -------------------------------------------------------------------
    // 3. infloop(x) and a contradiction at the second instant.
    // -------------------------------------------------------------------
    report("infloop(x)", &LowExpr::pos("x").infloop());
    report(
        "infloop(x) & (T ; ~x)",
        &LowExpr::pos("x").infloop().and(LowExpr::T.seq(LowExpr::neg("x"))),
    );

    // -------------------------------------------------------------------
    // 4. The §3 synchronization constraint: "a begins no later than b".
    // -------------------------------------------------------------------
    let marked_a = LowExpr::TStar
        .concat(LowExpr::pos("start_a").concat(LowExpr::pos("a")))
        .force_false("start_a");
    let marked_b = LowExpr::TStar
        .concat(LowExpr::pos("start_b").concat(LowExpr::pos("b")))
        .force_false("start_b");
    let ordering = LowExpr::TStar
        .concat(LowExpr::pos("start_a").concat(LowExpr::TStar.concat(LowExpr::pos("start_b"))))
        .force_false("start_a")
        .force_false("start_b");
    let sync = marked_a.and(marked_b).and(ordering);
    report("section 3 synchronization constraint", &sync);
}
