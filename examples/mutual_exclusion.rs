//! Chapter 8: distributed mutual exclusion — the specification of Figure 8-1,
//! the derived mutual-exclusion theorem, a bounded-model rendition of the
//! proof obligations of Figure 8-2, and exhaustive small-scope verification of
//! the algorithm over every interleaving — all checked through the unified
//! `Session` API.
//!
//! Run with `cargo run --example mutual_exclusion`.

use ilogic::core::spec::close_free_variables;
use ilogic::systems::explore::{explore, explore_backend, ExploreLimits, MutexModel};
use ilogic::systems::mutex::{mutual_exclusion_holds, simulate, simulate_broken, MutexWorkload};
use ilogic::systems::specs;
use ilogic::{CheckRequest, Parallelism, Session};

fn main() {
    // Both the Session checks and the exhaustive explorer pick up the
    // ILOGIC_TEST_PARALLEL override (1/auto, a worker count, or 0); verdicts
    // are identical whatever the worker count.
    let parallelism = Parallelism::from_env().unwrap_or(Parallelism::Off);
    println!("parallelism: {parallelism:?} ({} workers)\n", parallelism.workers());
    let session = Session::new();
    let theorem = close_free_variables(&specs::mutual_exclusion_theorem());

    println!("== the algorithm against Figure 8-1, several contention schedules ==");
    for seed in [1u64, 7, 13, 29] {
        let workload = MutexWorkload { processes: 3, entries: 1, cs_duration: 1, seed };
        let trace = simulate(workload);
        let report = session.check_spec(&specs::mutual_exclusion_spec(), &trace);
        let excl = session.check(CheckRequest::new(theorem.clone()).on_trace(&trace));
        println!(
            "seed {seed:>2}: spec {}, derived []~(cs(i) & cs(j)) {}, direct check {}",
            if report.passed() { "conforms" } else { "VIOLATED" },
            excl.verdict.passed(),
            mutual_exclusion_holds(&trace, workload.processes),
        );
    }

    println!("\n== a broken algorithm that skips the flag inspection ==");
    let broken = simulate_broken(2);
    let report = session.check_spec(&specs::mutual_exclusion_spec(), &broken);
    print!("{report}");
    let excl = session.check(CheckRequest::new(theorem.clone()).on_trace(&broken));
    println!("derived theorem: {}", excl.verdict);

    println!("\n== Figure 8-2, lemma L2 as a bounded-model check ==");
    // L2 (propositional rendition for two processes): if x_i holds throughout
    // an interval, the x_j <= cs_j interval cannot be found inside it, given
    // axiom A1.  We check the instance over the interval [ x_i <= cs_i ].
    use ilogic::core::dsl::*;
    let a1 = eventually(not(prop("xi"))).within(bwd(event(prop("xj")), event(prop("csj"))));
    let a2 = always(prop("csj").implies(prop("xj"))).and(always(prop("csi").implies(prop("xi"))));
    let l2 = a1.clone().and(a2).implies(
        always(prop("xi"))
            .implies(not(occurs(bwd(event(prop("xj")), event(prop("csj"))))))
            .within(bwd(event(prop("xi")), event(prop("csi")))),
    );
    let report = session.check(CheckRequest::new(l2).bounded(["xi", "xj", "csi", "csj"], 3));
    println!(
        "lemma L2 instance: {} ({} computations, {:?}, {} memo hits, {} workers)",
        report.verdict,
        report.stats.traces_checked,
        report.stats.duration,
        report.stats.memo.hits,
        report.stats.workers
    );

    println!("\n== exhaustive small-scope verification (every interleaving) ==");
    for (label, model) in [
        ("2 processes x 2 entries", MutexModel::correct(2, 2)),
        ("3 processes x 1 entry", MutexModel::correct(3, 1)),
    ] {
        let report = explore(&model, ExploreLimits::default(), MutexModel::mutual_exclusion);
        println!(
            "{label}: {} ({} states, {} transitions)",
            if report.verified() { "verified" } else { "NOT verified" },
            report.states,
            report.transitions
        );
    }

    println!("\n== the derived theorem over every complete run, via the explore backend ==");
    let backend = explore_backend(&MutexModel::correct(2, 1), ExploreLimits::default(), 256);
    let report = session.check(CheckRequest::new(theorem).with_backend(backend));
    println!(
        "theorem over all runs: {} ({} runs checked in {:?})",
        report.verdict, report.stats.traces_checked, report.stats.duration
    );

    let broken_model = MutexModel::broken(2, 1);
    let report = explore(&broken_model, ExploreLimits::default(), MutexModel::mutual_exclusion);
    if let Some(violation) = report.violation {
        println!("broken variant: counterexample interleaving {:?}", violation.actions);
    }
}
