//! Chapter 8: distributed mutual exclusion — the specification of Figure 8-1,
//! the derived mutual-exclusion theorem, a bounded-model rendition of the
//! proof obligations of Figure 8-2, and exhaustive small-scope verification of
//! the algorithm over every interleaving.
//!
//! Run with `cargo run --example mutual_exclusion`.

use ilogic::core::prelude::*;
use ilogic::core::spec::close_free_variables;
use ilogic::systems::explore::{explore, ExploreLimits, MutexModel};
use ilogic::systems::mutex::{mutual_exclusion_holds, simulate, simulate_broken, MutexWorkload};
use ilogic::systems::specs;

fn main() {
    println!("== the algorithm against Figure 8-1, several contention schedules ==");
    for seed in [1u64, 7, 13, 29] {
        let workload = MutexWorkload { processes: 3, entries: 1, cs_duration: 1, seed };
        let trace = simulate(workload);
        let report = specs::mutual_exclusion_spec().check(&trace);
        let theorem = close_free_variables(&specs::mutual_exclusion_theorem());
        let excl = Evaluator::new(&trace).check(&theorem);
        println!(
            "seed {seed:>2}: spec {}, derived []~(cs(i) & cs(j)) {}, direct check {}",
            if report.passed() { "conforms" } else { "VIOLATED" },
            excl,
            mutual_exclusion_holds(&trace, workload.processes),
        );
    }

    println!("\n== a broken algorithm that skips the flag inspection ==");
    let broken = simulate_broken(2);
    let report = specs::mutual_exclusion_spec().check(&broken);
    print!("{report}");
    let theorem = close_free_variables(&specs::mutual_exclusion_theorem());
    println!("derived theorem holds: {}", Evaluator::new(&broken).check(&theorem));

    println!("\n== Figure 8-2, lemma L2 as a bounded-model check ==");
    // L2 (propositional rendition for two processes): if x_i holds throughout
    // an interval, the x_j <= cs_j interval cannot be found inside it, given
    // axiom A1.  We check the instance over the interval [ x_i <= cs_i ].
    use ilogic::core::dsl::*;
    let a1 = eventually(not(prop("xi"))).within(bwd(event(prop("xj")), event(prop("csj"))));
    let a2 = always(prop("csj").implies(prop("xj"))).and(always(prop("csi").implies(prop("xi"))));
    let l2 = a1.clone().and(a2).implies(
        always(prop("xi"))
            .implies(not(occurs(bwd(event(prop("xj")), event(prop("csj"))))))
            .within(bwd(event(prop("xi")), event(prop("csi")))),
    );
    let checker = BoundedChecker::new(["xi", "xj", "csi", "csj"], 3);
    match checker.counterexample(&l2) {
        None => println!("lemma L2 instance: no counterexample up to the bound"),
        Some(cex) => println!("lemma L2 instance REFUTED by {cex}"),
    }

    println!("\n== exhaustive small-scope verification (every interleaving) ==");
    for (label, model) in
        [("2 processes x 2 entries", MutexModel::correct(2, 2)), ("3 processes x 1 entry", MutexModel::correct(3, 1))]
    {
        let report = explore(&model, ExploreLimits::default(), MutexModel::mutual_exclusion);
        println!(
            "{label}: {} ({} states, {} transitions)",
            if report.verified() { "verified" } else { "NOT verified" },
            report.states,
            report.transitions
        );
    }
    let broken_model = MutexModel::broken(2, 1);
    let report = explore(&broken_model, ExploreLimits::default(), MutexModel::mutual_exclusion);
    if let Some(violation) = report.violation {
        println!(
            "broken variant: counterexample interleaving {:?}",
            violation.actions
        );
    }
}
