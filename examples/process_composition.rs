//! Chapter 9 "next steps": attribute specifications to named processes and
//! compose them into a multiprocess system specification.
//!
//! The example splits the Figure 6-2 request/acknowledge protocol into its two
//! roles — the requester owns the request signal `R` (a local name, qualified
//! to `requester.R` in the composition), the responder is the unique owner of
//! the shared acknowledge signal `A` — composes the two processes, and checks
//! the composed specification against a four-phase handshake trace and against
//! a faulty trace in which the responder drops the acknowledgment early.
//!
//! Run with `cargo run --example process_composition`.

use ilogic::core::dsl::*;
use ilogic::core::prelude::*;
use ilogic::core::process::{ProcessSpec, System};
use ilogic::core::spec::Spec;
use ilogic::core::state::Prop;
use ilogic::Session;

/// The requester's half of Figure 6-2, written with its *local* name `R`:
/// a request may only be raised while the acknowledgment is down, and stays
/// up until the acknowledgment arrives (axiom A1).
fn requester() -> ProcessSpec {
    let a1 = within(
        fwd(event(prop("R")), must(event(prop("A")))),
        not(prop("A")).and(eventually(prop("R"))),
    );
    let spec = Spec::new("requester").init("Init", not(prop("R"))).axiom("A1", a1);
    ProcessSpec::new("requester", spec).owns("R").shares("A")
}

/// The responder's half: the acknowledgment stays up while the request stays
/// up (A2), and is eventually lowered after the request is withdrawn (A3).
/// The requester's signal is visible to it under its qualified name.
fn responder() -> ProcessSpec {
    let r = || prop("requester.R");
    let a2 =
        within(fwd(event(prop("A")), begin(must(event(not(r()))))), r().and(always(prop("A"))));
    let a3 = within(fwd_from(begin(event(not(r())))), occurs(must(event(not(prop("A"))))));
    let spec = Spec::new("responder").init("Init", not(prop("A"))).axiom("A2", a2).axiom("A3", a3);
    ProcessSpec::new("responder", spec).owns_shared("A").shares("requester.R")
}

fn handshake(correct: bool) -> Trace {
    let r = Prop::plain("requester.R");
    let a = Prop::plain("A");
    let mut b = TraceBuilder::new();
    b.commit(); // both low
    b.assert_prop(r.clone()).commit(); // request raised
    b.assert_prop(a.clone()).commit(); // acknowledged
    if !correct {
        // Faulty responder: drops the acknowledgment while the request is up.
        b.retract_prop(&a).commit();
        b.assert_prop(a.clone()).commit();
    }
    b.retract_prop(&r).commit(); // request withdrawn
    b.retract_prop(&a).commit(); // acknowledgment lowered
    b.commit();
    b.finish()
}

fn main() {
    let system =
        System::new("request-acknowledge").with_process(requester()).with_process(responder());

    let composed = system.compose().expect("composition is well-formed");
    println!("composed specification `{}`:", composed.name());
    for clause in composed.clauses() {
        println!("  {:<20} {}", format!("{} {}:", clause.kind, clause.label), clause.formula);
    }

    let session = Session::new();
    for (name, trace) in
        [("correct handshake", handshake(true)), ("faulty responder", handshake(false))]
    {
        let report = session.check_spec(&composed, &trace);
        println!("\n{name}: {}", if report.passed() { "conforms" } else { "VIOLATED" });
        for failure in report.failures() {
            println!("  violated clause: {failure}");
        }
        println!("{}", Diagram::new(&trace).prop_row("requester.R").prop_row("A").render());
    }
}
