//! The service layer end to end: start `ilogic-server` in-process, then
//! drive it the way an external client would — the PODC protocol zoo's
//! ring-election and sensor-bus theorems POSTed over HTTP as parser-grammar
//! strings with serialized runs, a mixed `/batch` polled to completion, and
//! a final `/metrics` scrape showing the accounting identity.
//!
//! Run with `cargo run --example service_client`.

use std::time::Duration;

use ilogic::core::json::Json;
use ilogic::core::session::trace_to_json;
use ilogic::core::trace::Trace;
use ilogic::server::client::ClientConn;
use ilogic::server::config::ServerConfig;
use ilogic::systems::explore::{collect_runs, ExploreLimits};
use ilogic::systems::ring::RingModel;
use ilogic::systems::sensorbus::SensorBusModel;

/// The wire carries formulas as parser-grammar strings, and the grammar is
/// ground (no `?i /= ?j` variable comparisons), so a quantified theorem
/// like `i ≠ j ⊃ □¬(leader(i) ∧ leader(j))` travels as its ground
/// instantiation over the model's concrete positions — one `[] ~(p(i) &
/// p(j))` conjunct per unordered pair.
fn ground_uniqueness(prop: &str, positions: usize) -> String {
    let mut conjuncts = Vec::new();
    for i in 0..positions {
        for j in (i + 1)..positions {
            conjuncts.push(format!("[] ~({prop}({i}) & {prop}({j}))"));
        }
    }
    conjuncts.join(" & ")
}

/// One ground theorem + the runs it should be checked over, as a wire job.
fn explore_job(theorem: &str, runs: &[Trace]) -> Json {
    let runs = Json::Array(runs.iter().map(trace_to_json).collect());
    Json::object()
        .field("formula", Json::Str(theorem.to_string()))
        .field(
            "backend",
            Json::object().field("kind", Json::Str("explore".into())).field("runs", runs),
        )
        .field("budget", Json::object().field("timeout_ms", Json::Int(10_000)))
}

fn main() {
    // An ephemeral port keeps the example runnable anywhere (CI included);
    // against a long-lived daemon you would connect to its --addr instead.
    let handle = ilogic::server::server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServerConfig::default()
    })
    .expect("the daemon starts");
    let addr = handle.addr();
    println!("ilogic-server listening on {addr}");
    let mut conn = ClientConn::connect(addr, Duration::from_secs(30)).expect("client connects");

    let limits = ExploreLimits::default();
    // Leader uniqueness over the 3-node ring; bus exclusivity over the
    // 2-slave sensor bus — the PODC zoo's headline theorems, ground form.
    let ring_theorem = ground_uniqueness("leader", 3);
    let bus_theorem = ground_uniqueness("busy", 2);

    println!("\n== POST /check: the theorems over each model's complete runs ==");
    let cases = [
        (
            "ring correct",
            &ring_theorem,
            collect_runs(&RingModel::correct(vec![2, 1, 3]), limits, 48),
        ),
        ("ring broken", &ring_theorem, collect_runs(&RingModel::broken(vec![2, 1, 3]), limits, 48)),
        ("bus correct", &bus_theorem, collect_runs(&SensorBusModel::correct(2, 1), limits, 48)),
        ("bus broken", &bus_theorem, collect_runs(&SensorBusModel::broken(2, 1), limits, 48)),
    ];
    for (name, theorem, runs) in &cases {
        let body = explore_job(theorem, runs).to_string();
        let response = conn.post("/check", &body).expect("the daemon answers");
        assert_eq!(response.status, 200, "{name}: {}", response.body);
        let report = Json::parse(&response.body).expect("the body is a report");
        println!(
            "{name}: verdict {} over {} runs (backend {})",
            report.get("verdict").map_or_else(|| "?".into(), Json::to_string),
            runs.len(),
            report.get("backend").and_then(Json::as_str).unwrap_or("?"),
        );
    }

    println!("\n== POST /batch: both theorems in one job set, polled to done ==");
    let jobs =
        Json::Array(cases.iter().map(|(_, theorem, runs)| explore_job(theorem, runs)).collect());
    let body = Json::object().field("jobs", jobs).to_string();
    let accepted = conn.post("/batch", &body).expect("the batch posts");
    assert_eq!(accepted.status, 202, "{}", accepted.body);
    let id = Json::parse(&accepted.body)
        .ok()
        .and_then(|root| root.get("id").and_then(Json::as_int))
        .expect("the 202 carries the set id");
    println!("accepted as job set {id}");
    let done = loop {
        let poll = conn.get(&format!("/jobs/{id}")).expect("the poll answers");
        let root = Json::parse(&poll.body).expect("the poll body is JSON");
        if root.get("status").and_then(Json::as_str) == Some("done") {
            break root;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    let reports = done.get("reports").and_then(Json::as_array).expect("done sets carry reports");
    for ((name, _, _), report) in cases.iter().zip(reports) {
        println!(
            "set {id} / {name}: verdict {}",
            report.get("verdict").map_or_else(|| "?".into(), Json::to_string)
        );
    }

    println!("\n== GET /metrics: the accounting identity ==");
    let metrics = conn.get("/metrics").expect("the scrape answers");
    let snapshot = Json::parse(&metrics.body).expect("the snapshot is JSON");
    let counter = |name: &str| snapshot.get(name).and_then(Json::as_int).unwrap_or(-1);
    println!(
        "accepted {} = completed {} + shed {} + in_flight {}",
        counter("accepted"),
        counter("completed"),
        counter("shed"),
        counter("in_flight"),
    );
    assert_eq!(
        counter("accepted"),
        counter("completed") + counter("shed") + counter("in_flight"),
        "the metrics identity must hold at every scrape"
    );

    drop(conn);
    handle.shutdown();
    println!("\ndaemon drained and stopped cleanly");
}
